package engine_test

// Differential tests: the compiled engine must be bit-identical to the
// reference semantics — rules.Predicate.Matches, i.e. per-window
// Composition.MatchedBy — in both match modes, across every view
// (Sweep, SweepObservations, Cursor, EvalWindow).

import (
	"math/rand"
	"slices"
	"testing"

	"cdt/internal/core"
	"cdt/internal/engine"
	"cdt/internal/pattern"
	"cdt/internal/rules"
)

var cfg2 = pattern.NewConfig(2)

// oracleFired evaluates the rule the reference way: every predicate via
// Predicate.Matches on the whole window.
func oracleFired(r rules.Rule, window []pattern.Label) []int {
	var out []int
	for pi, p := range r.Predicates {
		if p.Matches(window, r.Mode) {
			out = append(out, pi)
		}
	}
	return out
}

// randomRule builds a rule with compositions drawn from the alphabet,
// including empty compositions, negations, empty predicates (TRUE), and
// compositions longer than typical windows.
func randomRule(rng *rand.Rand, alphabet []pattern.Label, mode core.MatchMode) rules.Rule {
	r := rules.Rule{Mode: mode}
	nPred := 1 + rng.Intn(5)
	for p := 0; p < nPred; p++ {
		var pred rules.Predicate
		for l, nLit := 0, rng.Intn(4); l < nLit; l++ {
			n := rng.Intn(6) // 0 => empty composition
			comp := make([]pattern.Label, n)
			for j := range comp {
				comp[j] = alphabet[rng.Intn(5)]
			}
			pred.Literals = append(pred.Literals, rules.Literal{
				Comp: core.Composition{Labels: comp},
				Neg:  rng.Intn(3) == 0,
			})
		}
		r.Predicates = append(r.Predicates, pred)
	}
	return r
}

func randomLabels(rng *rand.Rand, alphabet []pattern.Label, n int) []pattern.Label {
	out := make([]pattern.Label, n)
	for i := range out {
		out[i] = alphabet[rng.Intn(5)]
	}
	return out
}

func checkWindow(t *testing.T, ctx string, got, want []int) {
	t.Helper()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !slices.Equal(got, want) {
		t.Fatalf("%s: engine fired %v, oracle %v", ctx, got, want)
	}
}

func TestSweepMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	alphabet := cfg2.Alphabet()
	for _, mode := range []core.MatchMode{core.MatchContiguous, core.MatchSubsequence} {
		for trial := 0; trial < 40; trial++ {
			r := randomRule(rng, alphabet, mode)
			omega := 1 + rng.Intn(8)
			labels := randomLabels(rng, alphabet, rng.Intn(40))
			e := engine.Compile(r, omega)
			marks := e.Sweep(labels)
			wantWindows := max(len(labels)-omega+1, 0)
			if marks.NumWindows() != wantWindows {
				t.Fatalf("mode=%v omega=%d len=%d: %d windows, want %d",
					mode, omega, len(labels), marks.NumWindows(), wantWindows)
			}
			var got []int
			for w := 0; w < marks.NumWindows(); w++ {
				want := oracleFired(r, labels[w:w+omega])
				got = marks.AppendFired(got[:0], w)
				checkWindow(t, mode.String(), got, want)
				if marks.Fired(w) != (len(want) > 0) {
					t.Fatalf("Fired(%d) = %v, oracle %v", w, marks.Fired(w), want)
				}
				wantFirst := -1
				if len(want) > 0 {
					wantFirst = want[0]
				}
				if marks.First(w) != wantFirst {
					t.Fatalf("First(%d) = %d, want %d", w, marks.First(w), wantFirst)
				}
			}
		}
	}
}

func TestCursorResetIsolatesRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	alphabet := cfg2.Alphabet()
	for _, mode := range []core.MatchMode{core.MatchContiguous, core.MatchSubsequence} {
		for trial := 0; trial < 25; trial++ {
			r := randomRule(rng, alphabet, mode)
			omega := 1 + rng.Intn(6)
			e := engine.Compile(r, omega)
			cur := e.NewCursor()
			for run := 0; run < 4; run++ {
				labels := randomLabels(rng, alphabet, rng.Intn(3*omega))
				for i, l := range labels {
					fired, complete := cur.Step(l)
					if complete != (i+1 >= omega) {
						t.Fatalf("mode=%v run=%d step=%d: complete=%v", mode, run, i, complete)
					}
					if !complete {
						continue
					}
					want := oracleFired(r, labels[i+1-omega:i+1])
					checkWindow(t, "cursor "+mode.String(), fired, want)
				}
				cur.Reset()
				if cur.RunLen() != 0 {
					t.Fatal("RunLen after Reset")
				}
			}
		}
	}
}

func TestSweepObservationsMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	alphabet := cfg2.Alphabet()
	for _, mode := range []core.MatchMode{core.MatchContiguous, core.MatchSubsequence} {
		for trial := 0; trial < 25; trial++ {
			r := randomRule(rng, alphabet, mode)
			omega := 1 + rng.Intn(5)
			seq := randomLabels(rng, alphabet, omega+20)
			sliding, err := core.Windows(seq, nil, omega)
			if err != nil {
				t.Fatal(err)
			}
			// Mixed pool: run, isolated copies (fresh backing arrays), an
			// off-ω observation, then the tail of the run.
			obs := append([]core.Observation(nil), sliding[:8]...)
			for i := 8; i < 12; i++ {
				obs = append(obs, core.Observation{
					Labels: append([]pattern.Label(nil), sliding[i].Labels...),
				})
			}
			obs = append(obs, core.Observation{Labels: randomLabels(rng, alphabet, omega+3)})
			obs = append(obs, sliding[12:]...)

			e := engine.Compile(r, omega)
			marks := e.SweepObservations(obs)
			var got []int
			for i := range obs {
				want := oracleFired(r, obs[i].Labels)
				got = marks.AppendFired(got[:0], i)
				checkWindow(t, "obs "+mode.String(), got, want)
			}
		}
	}
}

func TestEvalWindowMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	alphabet := cfg2.Alphabet()
	for _, mode := range []core.MatchMode{core.MatchContiguous, core.MatchSubsequence} {
		for trial := 0; trial < 40; trial++ {
			r := randomRule(rng, alphabet, mode)
			omega := 1 + rng.Intn(5)
			e := engine.Compile(r, omega)
			// Arbitrary lengths: shorter than ω, ω, and longer — longer
			// windows may satisfy compositions longer than ω.
			for _, n := range []int{0, omega - 1, omega, omega + 4, omega + 9} {
				if n < 0 {
					continue
				}
				window := randomLabels(rng, alphabet, n)
				got := e.EvalWindow(window, nil)
				checkWindow(t, "evalwindow "+mode.String(), got, oracleFired(r, window))
			}
		}
	}
}

func TestEmptyAndDegenerateRules(t *testing.T) {
	alphabet := cfg2.Alphabet()
	win := alphabet[:3]

	// No predicates: nothing ever fires.
	e := engine.Compile(rules.Rule{}, 3)
	if got := e.EvalWindow(win, nil); len(got) != 0 {
		t.Fatalf("empty rule fired %v", got)
	}
	if m := e.Sweep(alphabet[:6]); m.NumWindows() != 4 || m.Fired(0) {
		t.Fatal("empty rule sweep fired")
	}

	// TRUE predicate (no literals) fires on every window; a predicate
	// with a negated empty composition never fires.
	r := rules.Rule{Predicates: []rules.Predicate{
		{},
		{Literals: []rules.Literal{{Comp: core.Composition{}, Neg: true}}},
		{Literals: []rules.Literal{{Comp: core.Composition{}}}},
	}}
	e = engine.Compile(r, 3)
	want := []int{0, 2}
	if got := e.EvalWindow(win, nil); !slices.Equal(got, want) {
		t.Fatalf("degenerate rule fired %v, want %v", got, want)
	}
	m := e.Sweep(alphabet[:6])
	for w := 0; w < m.NumWindows(); w++ {
		if got := m.AppendFired(nil, w); !slices.Equal(got, want) {
			t.Fatalf("window %d fired %v, want %v", w, got, want)
		}
	}
}

func TestEngineSharedAcrossGoroutines(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	alphabet := cfg2.Alphabet()
	r := randomRule(rng, alphabet, core.MatchContiguous)
	e := engine.Compile(r, 4)
	labels := randomLabels(rng, alphabet, 200)
	wantMarks := e.Sweep(labels)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			m := e.Sweep(labels)
			for w := 0; w < m.NumWindows(); w++ {
				if m.First(w) != wantMarks.First(w) {
					t.Errorf("concurrent sweep diverged at window %d", w)
					return
				}
			}
			_ = e.EvalWindow(labels[:10], nil)
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
