package rules

import (
	"math/rand"
	"strings"
	"testing"

	"cdt/internal/core"
	"cdt/internal/pattern"
)

func TestMagnitudeRange(t *testing.T) {
	r := MagnitudeRange{Min: 1, Max: 3}
	if !r.Contains(2) || r.Contains(4) || r.Contains(0) {
		t.Error("containment wrong")
	}
	if r.Exact() {
		t.Error("wide range reported exact")
	}
	if !(MagnitudeRange{Min: 2, Max: 2}).Exact() {
		t.Error("pinned range not exact")
	}
}

func TestMagnitudeRangeNames(t *testing.T) {
	if (MagnitudeRange{Min: 1, Max: 2}).name(2) != "+" {
		t.Error("positive wide name")
	}
	if (MagnitudeRange{Min: -2, Max: -1}).name(2) != "-" {
		t.Error("negative wide name")
	}
	if (MagnitudeRange{Min: 2, Max: 2}).name(2) != "H" {
		t.Error("exact name")
	}
}

func TestGeneralLabelMatches(t *testing.T) {
	g := GeneralLabel{Var: pattern.PP, Alpha: MagnitudeRange{Min: 1, Max: 2}, Beta: MagnitudeRange{Min: 1, Max: 2}}
	if !g.Matches(lbl(pattern.PP, 1, 2)) {
		t.Error("in-range label rejected")
	}
	if g.Matches(lbl(pattern.PN, -1, -1)) {
		t.Error("wrong variation matched")
	}
}

func TestGeneralCompositionMatching(t *testing.T) {
	anyPP := GeneralComposition{{Var: pattern.PP, Alpha: MagnitudeRange{Min: 1, Max: 2}, Beta: MagnitudeRange{Min: 1, Max: 2}}}
	window := []pattern.Label{lbl(pattern.CST, 0, 0), lbl(pattern.PP, 2, 1)}
	if !anyPP.MatchedBy(window, core.MatchContiguous) {
		t.Error("generalized PP not found")
	}
	if anyPP.MatchedBy([]pattern.Label{lbl(pattern.PN, -1, -1)}, core.MatchContiguous) {
		t.Error("false match")
	}
	// Gapped mode.
	two := GeneralComposition{
		{Var: pattern.PP, Alpha: MagnitudeRange{Min: 1, Max: 2}, Beta: MagnitudeRange{Min: 1, Max: 2}},
		{Var: pattern.PN, Alpha: MagnitudeRange{Min: -2, Max: -1}, Beta: MagnitudeRange{Min: -2, Max: -1}},
	}
	gapped := []pattern.Label{lbl(pattern.PP, 1, 1), lbl(pattern.CST, 0, 0), lbl(pattern.PN, -2, -2)}
	if two.MatchedBy(gapped, core.MatchContiguous) {
		t.Error("contiguous matched across a gap")
	}
	if !two.MatchedBy(gapped, core.MatchSubsequence) {
		t.Error("subsequence missed the gapped occurrence")
	}
	if !(GeneralComposition{}).MatchedBy(nil, core.MatchContiguous) {
		t.Error("empty composition should match")
	}
}

func TestLiftRulePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alphabet := cfg2.Alphabet()
	randComp := func() core.Composition {
		n := rng.Intn(2) + 1
		ls := make([]pattern.Label, n)
		for i := range ls {
			ls[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return core.Composition{Labels: ls}
	}
	for trial := 0; trial < 50; trial++ {
		var r Rule
		for p := 0; p < rng.Intn(3)+1; p++ {
			var pred Predicate
			for l := 0; l < rng.Intn(3)+1; l++ {
				pred.Literals = append(pred.Literals, Literal{Comp: randComp(), Neg: rng.Intn(3) == 0})
			}
			r.Predicates = append(r.Predicates, pred)
		}
		g := liftRule(r)
		for w := 0; w < 30; w++ {
			window := make([]pattern.Label, rng.Intn(5)+1)
			for i := range window {
				window[i] = alphabet[rng.Intn(len(alphabet))]
			}
			if r.Detect(window) != g.Detect(window) {
				t.Fatalf("lift changed semantics on %v", window)
			}
		}
	}
}

// buildNoisyMagnitudeData creates observations where anomalies are
// positive peaks of VARIED magnitudes; an exact-magnitude rule can only
// catch the training magnitude, the generalized rule catches all.
func buildNoisyMagnitudeData() (train, reference []core.Observation) {
	mk := func(alpha, beta pattern.Interval, cls core.Class) core.Observation {
		labels := []pattern.Label{
			lbl(pattern.VP, 1, -1),
			{Var: pattern.PP, Alpha: alpha, Beta: beta},
			lbl(pattern.VN, -1, 1),
		}
		return core.Observation{Labels: labels, Class: cls}
	}
	normal := core.Observation{Labels: []pattern.Label{
		lbl(pattern.VP, 1, -1), lbl(pattern.VN, -1, 1), lbl(pattern.VP, 1, -1),
	}, Class: core.Normal}
	train = []core.Observation{mk(3, 3, core.Anomaly), normal, normal, normal}
	reference = []core.Observation{
		mk(3, 3, core.Anomaly), mk(4, 4, core.Anomaly), mk(2, 3, core.Anomaly),
		normal, normal, normal, normal,
	}
	return train, reference
}

func TestGeneralizeWidensWhenJustified(t *testing.T) {
	train, reference := buildNoisyMagnitudeData()
	tree, err := core.Build(train, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact := Extract(tree, PureAnomalyLeaves)
	if exact.Count() == 0 {
		t.Fatal("no rules learned")
	}
	lifted := liftRule(exact)
	general := Generalize(exact, reference, 4)
	if general.F1(reference) < lifted.F1(reference) {
		t.Errorf("generalization degraded F1: %.2f -> %.2f", lifted.F1(reference), general.F1(reference))
	}
	// The exact rule misses the unseen magnitudes; the generalized rule
	// must catch them.
	if general.F1(reference) != 1 {
		t.Errorf("generalized F1 = %v, want 1", general.F1(reference))
	}
}

func TestGeneralizeNeverDegradesReferenceF1(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	alphabet := cfg2.Alphabet()
	for trial := 0; trial < 20; trial++ {
		obs := make([]core.Observation, 40)
		for i := range obs {
			labels := make([]pattern.Label, 5)
			for j := range labels {
				labels[j] = alphabet[rng.Intn(len(alphabet))]
			}
			cls := core.Normal
			if rng.Intn(4) == 0 {
				cls = core.Anomaly
			}
			obs[i] = core.Observation{Labels: labels, Class: cls}
		}
		tree, err := core.Build(obs, core.Options{MaxCompositionLen: 2})
		if err != nil {
			t.Fatal(err)
		}
		exact := Extract(tree, MajorityAnomalyLeaves)
		lifted := liftRule(exact)
		general := Generalize(exact, obs, 2)
		if general.F1(obs)+1e-12 < lifted.F1(obs) {
			t.Fatalf("trial %d: generalization degraded F1 %.3f -> %.3f", trial, lifted.F1(obs), general.F1(obs))
		}
	}
}

func TestGeneralizeEmptyReferenceIsLift(t *testing.T) {
	r := Rule{Predicates: []Predicate{{Literals: []Literal{pos(comp(la))}}}}
	g := Generalize(r, nil, 2)
	if g.Count() != 1 {
		t.Fatal("structure changed")
	}
	if !g.Predicates[0].Positives[0][0].Alpha.Exact() {
		t.Error("widened without evidence")
	}
}

func TestGeneralRuleFormat(t *testing.T) {
	g := GeneralRule{Predicates: []GeneralPredicate{{
		Positives: []GeneralComposition{{
			{Var: pattern.PP, Alpha: MagnitudeRange{Min: 1, Max: 2}, Beta: MagnitudeRange{Min: 2, Max: 2}},
		}},
		Negatives: []core.Composition{comp(lb)},
	}}}
	out := g.Format(cfg2)
	for _, want := range []string{"PP[+,H]", "NOT", "THEN anomaly"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
	if (GeneralRule{}).Format(cfg2) != "(no anomaly rules)" {
		t.Error("empty format wrong")
	}
}

func TestRemoveRedundant(t *testing.T) {
	// Second predicate is shadowed by the first; third never fires on an
	// anomaly.
	r := Rule{Predicates: []Predicate{
		{Literals: []Literal{pos(comp(la))}},
		{Literals: []Literal{pos(comp(la)), pos(comp(lb))}},
		{Literals: []Literal{pos(comp(lc))}},
	}}
	obs := []core.Observation{
		{Labels: []pattern.Label{la, lb}, Class: core.Anomaly},
		{Labels: []pattern.Label{lc, lc}, Class: core.Normal},
	}
	out := RemoveRedundant(r, obs)
	if out.Count() != 1 {
		t.Fatalf("got %d predicates, want 1:\n%s", out.Count(), out.Format(cfg2))
	}
}

func TestMergeDuplicatePredicates(t *testing.T) {
	p := GeneralPredicate{Positives: []GeneralComposition{{
		{Var: pattern.PP, Alpha: MagnitudeRange{Min: 1, Max: 2}, Beta: MagnitudeRange{Min: 1, Max: 2}},
	}}}
	g := GeneralRule{Predicates: []GeneralPredicate{p, p}}
	if merged := mergeDuplicatePredicates(g); merged.Count() != 1 {
		t.Errorf("got %d predicates", merged.Count())
	}
}

func TestFullRange(t *testing.T) {
	if r := fullRange(2, 4); r.Min != 1 || r.Max != 4 {
		t.Errorf("positive full range = %+v", r)
	}
	if r := fullRange(-1, 4); r.Min != -4 || r.Max != -1 {
		t.Errorf("negative full range = %+v", r)
	}
	if r := fullRange(0, 4); !r.Exact() || r.Min != 0 {
		t.Errorf("zero full range = %+v", r)
	}
}
