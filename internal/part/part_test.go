package part

import (
	"math/rand"
	"testing"

	"cdt/internal/c45"
)

func xorDataset(n int, seed int64) *c45.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &c45.Dataset{
		AttrNames:  []string{"a", "b", "noise"},
		AttrCard:   []int{2, 2, 4},
		NumClasses: 2,
	}
	for i := 0; i < n; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		ds.Instances = append(ds.Instances, c45.Instance{
			Attrs: []int{a, b, rng.Intn(4)},
			Class: a ^ b,
		})
	}
	return ds
}

func TestLearnXOR(t *testing.T) {
	ds := xorDataset(200, 1)
	cls, err := Learn(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for _, inst := range ds.Instances {
		if cls.Predict(inst.Attrs) != inst.Class {
			errs++
		}
	}
	if errs != 0 {
		t.Errorf("%d training errors on noiseless XOR (%d rules)", errs, cls.NumRules())
	}
}

func TestLearnCoversEveryInstance(t *testing.T) {
	ds := xorDataset(100, 2)
	cls, err := Learn(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cls.NumRules() == 0 {
		t.Fatal("no rules learned")
	}
	// Rule coverages are recorded and positive.
	for i, r := range cls.Rules {
		if r.Coverage <= 0 {
			t.Errorf("rule %d coverage %d", i, r.Coverage)
		}
	}
}

func TestLearnImbalanced(t *testing.T) {
	// 95% class 0, 5% class 1 determined by attr 0 == 1.
	ds := &c45.Dataset{
		AttrNames:  []string{"key", "junk"},
		AttrCard:   []int{2, 3},
		NumClasses: 2,
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		key := 0
		if i%20 == 0 {
			key = 1
		}
		ds.Instances = append(ds.Instances, c45.Instance{
			Attrs: []int{key, rng.Intn(3)},
			Class: key,
		})
	}
	cls, err := Learn(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cls.Predict([]int{1, 0}) != 1 {
		t.Error("minority class not predicted")
	}
	if cls.Predict([]int{0, 1}) != 0 {
		t.Error("majority class not predicted")
	}
}

func TestLearnMaxRules(t *testing.T) {
	ds := xorDataset(200, 4)
	cls, err := Learn(ds, Options{MaxRules: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cls.NumRules() > 1 {
		t.Errorf("got %d rules, cap was 1", cls.NumRules())
	}
}

func TestLearnErrors(t *testing.T) {
	ds := &c45.Dataset{AttrNames: []string{"a"}, AttrCard: []int{2}, NumClasses: 2}
	if _, err := Learn(ds, Options{}); err == nil {
		t.Error("empty dataset accepted")
	}
	ds.AttrCard = []int{2, 3}
	if _, err := Learn(ds, Options{}); err == nil {
		t.Error("invalid dataset accepted")
	}
}

func TestRuleMatches(t *testing.T) {
	r := Rule{Conditions: []c45.Condition{{Attr: 0, Value: 1}, {Attr: 2, Value: 0}}}
	if !r.Matches([]int{1, 9, 0}) {
		t.Error("matching instance rejected")
	}
	if r.Matches([]int{0, 9, 0}) {
		t.Error("non-matching instance accepted")
	}
	empty := Rule{}
	if !empty.Matches([]int{1, 2, 3}) {
		t.Error("empty rule should match everything")
	}
}

func TestOrderedEvaluation(t *testing.T) {
	cls := &Classifier{
		Rules: []Rule{
			{Conditions: []c45.Condition{{Attr: 0, Value: 1}}, Class: 1},
			{Conditions: nil, Class: 0}, // catch-all later
		},
		DefaultClass: 0,
	}
	if cls.Predict([]int{1}) != 1 {
		t.Error("first rule should win")
	}
	if cls.Predict([]int{0}) != 0 {
		t.Error("catch-all should fire")
	}
}

func TestDefaultClassUsed(t *testing.T) {
	cls := &Classifier{DefaultClass: 1}
	if cls.Predict([]int{0}) != 1 {
		t.Error("default class not used")
	}
}

func TestLearnDeterministic(t *testing.T) {
	ds := xorDataset(150, 5)
	c1, err := Learn(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Learn(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c1.NumRules() != c2.NumRules() || c1.DefaultClass != c2.DefaultClass {
		t.Error("nondeterministic learning")
	}
}

func TestLearnPartialTreeVariant(t *testing.T) {
	ds := xorDataset(200, 6)
	full, err := Learn(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	partial, err := Learn(ds, Options{Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both variants must classify the separable data well.
	for name, cls := range map[string]*Classifier{"full": full, "partial": partial} {
		errs := 0
		for _, inst := range ds.Instances {
			if cls.Predict(inst.Attrs) != inst.Class {
				errs++
			}
		}
		if float64(errs)/float64(len(ds.Instances)) > 0.1 {
			t.Errorf("%s variant: %d/%d errors", name, errs, len(ds.Instances))
		}
	}
	if partial.NumRules() == 0 {
		t.Error("partial variant learned no rules")
	}
}
