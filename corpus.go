package cdt

// Corpus is the shared training-pipeline layer: it inverts the data flow
// of the original trainers. Instead of every Fit/Evaluate/Optimize call
// re-running normalize → label → window from scratch, series are
// normalized once at corpus construction (normalization is
// parameter-free), per-δ labelings and per-(ω, δ) pooled observation
// windows are memoized behind an RWMutex-guarded bounded cache, and
// trainers pull immutable labeled views out of the corpus. Hyper-parameter
// search (one CDT per candidate (ω, δ)) and cross-validation suites — the
// two hottest training-side loops — are the intended beneficiaries:
// candidates sharing a δ share one labeling, and repeated (ω, δ)
// evaluations across searches share everything but tree induction.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"cdt/internal/core"
	"cdt/internal/pattern"
	"cdt/internal/rules"
	"cdt/internal/timeseries"
)

// DefaultCorpusCacheSize bounds each of the corpus caches (labelings and
// window pools) when NewCorpus is used. The paper's full search space is
// ω ∈ [3,31] × δ ∈ [1,21] = 609 cells, but a Bayesian search touches a
// few dozen of them; 256 keeps every candidate of a typical search (and
// the repeated candidates of a two-objective suite) resident without
// letting a grid sweep pin the whole plane in memory.
const DefaultCorpusCacheSize = 256

// Corpus holds pre-normalized training (or evaluation) series and
// memoizes the parameter-dependent pipeline stages:
//
//	series ──normalize once──► Corpus ──per-δ cache──► labelings
//	                                  ──per-(ω,δ) cache──► pooled windows
//
// Cache keys are the effective pattern configuration: labelings key on
// (δ, ε), window pools on (ω, δ, ε), where ε is the value-equality
// tolerance after defaulting. Both caches are bounded; when full, the
// least-recently-used entry is evicted and will be recomputed on the next
// request (evicted slices remain valid for holders — nothing is recycled).
//
// A Corpus is safe for concurrent use. Everything it hands out is shared
// and immutable by contract: callers must not mutate returned observation
// slices or their labels, and must not mutate the underlying series while
// the corpus is alive (construction reuses a caller's slice when the
// series is already normalized to [0,1]).
type Corpus struct {
	series []*Series
	limit  int

	mu          sync.RWMutex
	tick        atomic.Uint64
	labels      map[labelKey]*labelEntry
	windows     map[windowKey]*windowEntry
	resolutions map[resolutionKey]*resolutionEntry
	stats       corpusCounters
}

// CorpusStats is a point-in-time snapshot of a corpus's pipeline-cache
// counters: hits, misses, and evictions per cache map. A "hit" is a
// lookup that found a resident entry (even one still being computed by
// another goroutine — the lookup shares that computation); a "miss"
// inserted a new entry; an "eviction" dropped an LRU victim to make
// room. Misses minus evictions bounds resident entries; a high eviction
// rate means the cache bound is below the search's working set.
type CorpusStats struct {
	LabelHits, LabelMisses, LabelEvictions    uint64
	WindowHits, WindowMisses, WindowEvictions uint64
}

// corpusCounters is the atomic backing store for CorpusStats. Counters
// are bumped outside the corpus locks; readers see a near-consistent
// snapshot, which is all an observability surface needs.
type corpusCounters struct {
	labelHits, labelMisses, labelEvictions    atomic.Uint64
	windowHits, windowMisses, windowEvictions atomic.Uint64
}

func (c *corpusCounters) snapshot() CorpusStats {
	return CorpusStats{
		LabelHits:       c.labelHits.Load(),
		LabelMisses:     c.labelMisses.Load(),
		LabelEvictions:  c.labelEvictions.Load(),
		WindowHits:      c.windowHits.Load(),
		WindowMisses:    c.windowMisses.Load(),
		WindowEvictions: c.windowEvictions.Load(),
	}
}

// globalCorpusStats aggregates cache counters across every Corpus in the
// process, so a long-lived binary (cdtserve's /metrics, the experiments
// harness) can expose training-cache behaviour without holding
// references to short-lived corpora.
var globalCorpusStats corpusCounters

// CorpusCacheStats returns the process-wide aggregate of every corpus's
// cache counters since process start.
func CorpusCacheStats() CorpusStats { return globalCorpusStats.snapshot() }

// Stats returns this corpus's cache counters.
func (c *Corpus) Stats() CorpusStats { return c.stats.snapshot() }

// labelKey identifies a labeling: labeling depends only on δ and the
// equality tolerance, not on ω.
type labelKey struct {
	delta   int
	epsilon float64
}

// windowKey identifies a pooled window set: ω plus the labeling key.
type windowKey struct {
	omega int
	labelKey
}

// labelEntry is one cached labeling of every corpus series. once
// guarantees a single computation per resident entry even under
// concurrent misses; lastUse drives LRU eviction and is atomic so cache
// hits can bump it under the read lock. seq is the entry's insertion
// number (assigned and read under the write lock): evictLRU uses it to
// break last-use ties deterministically instead of by map iteration
// order.
type labelEntry struct {
	once    sync.Once
	lastUse atomic.Uint64
	seq     uint64

	perSeries [][]pattern.Label
	err       error
}

// windowEntry is one cached pooled observation set.
type windowEntry struct {
	once    sync.Once
	lastUse atomic.Uint64
	seq     uint64

	obs []core.Observation
	err error
}

// resolutionKey identifies a derived downsampled corpus: the resample
// factor plus the bucket aggregator (canonicalized, so "" and "mean"
// share an entry).
type resolutionKey struct {
	factor int
	agg    string
}

// resolutionEntry is one cached derived corpus. Unlike labelings and
// window pools these are not LRU-evicted: a pyramid uses a handful of
// factors (bounded by PyramidConfig validation), so the map stays tiny,
// and each derived corpus carries its own bounded caches.
type resolutionEntry struct {
	once sync.Once

	c   *Corpus
	err error
}

// NewCorpus builds a corpus over the series, normalizing each to [0,1]
// up front (series already in range are used as-is, so pre-normalized
// splits keep a common scale — the same rule Fit always applied). The
// caches are bounded by DefaultCorpusCacheSize.
func NewCorpus(series []*Series) (*Corpus, error) {
	return NewCorpusSize(series, DefaultCorpusCacheSize)
}

// NewCorpusSize is NewCorpus with an explicit bound on each cache (at
// least 1). Small bounds force eviction and recomputation; they never
// affect results.
func NewCorpusSize(series []*Series, cacheSize int) (*Corpus, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("cdt: corpus needs at least one series")
	}
	if cacheSize < 1 {
		cacheSize = 1
	}
	c := &Corpus{
		series:      make([]*Series, len(series)),
		limit:       cacheSize,
		labels:      make(map[labelKey]*labelEntry),
		windows:     make(map[windowKey]*windowEntry),
		resolutions: make(map[resolutionKey]*resolutionEntry),
	}
	for i, s := range series {
		ns, err := ensureNormalized(s)
		if err != nil {
			return nil, fmt.Errorf("cdt: series %q: %w", s.Name, err)
		}
		c.series[i] = ns
	}
	return c, nil
}

// Len returns the number of series in the corpus.
func (c *Corpus) Len() int { return len(c.series) }

// labelsFor returns the cached per-series labelings for a pattern
// configuration, computing them once on miss. All series label into one
// backing array via pattern.LabelSeriesInto, so a cache refill costs a
// single allocation regardless of corpus width.
func (c *Corpus) labelsFor(pcfg pattern.Config) ([][]pattern.Label, error) {
	k := labelKey{delta: pcfg.Delta, epsilon: pcfg.Epsilon}
	c.mu.RLock()
	e, ok := c.labels[k]
	c.mu.RUnlock()
	if !ok {
		c.mu.Lock()
		if e, ok = c.labels[k]; !ok {
			evictLRU(c.labels, c.limit, &c.stats.labelEvictions, &globalCorpusStats.labelEvictions)
			e = &labelEntry{seq: c.tick.Add(1)}
			c.labels[k] = e
		}
		c.mu.Unlock()
	}
	if ok {
		c.stats.labelHits.Add(1)
		globalCorpusStats.labelHits.Add(1)
	} else {
		c.stats.labelMisses.Add(1)
		globalCorpusStats.labelMisses.Add(1)
	}
	e.lastUse.Store(c.tick.Add(1))
	e.once.Do(func() {
		total := 0
		for _, s := range c.series {
			if n := s.Len() - 2; n > 0 {
				total += n
			}
		}
		buf := make([]pattern.Label, 0, total)
		perSeries := make([][]pattern.Label, len(c.series))
		for i, s := range c.series {
			start := len(buf)
			var err error
			buf, err = pcfg.LabelSeriesInto(buf, s.Values)
			if err != nil {
				e.err = fmt.Errorf("cdt: series %q: %w", s.Name, err)
				return
			}
			// Full slice expression: a labeling is immutable once cached.
			perSeries[i] = buf[start:len(buf):len(buf)]
		}
		e.perSeries = perSeries
	})
	return e.perSeries, e.err
}

// Observations returns the pooled ω-windows of every corpus series for
// the given options — the exact pool Fit trains on — computing and
// caching them on first request. The returned slice is shared: treat it
// (and the labels it references) as read-only.
func (c *Corpus) Observations(opts Options) ([]Observation, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	pcfg := opts.patternConfig()
	k := windowKey{omega: opts.Omega, labelKey: labelKey{delta: pcfg.Delta, epsilon: pcfg.Epsilon}}
	c.mu.RLock()
	e, ok := c.windows[k]
	c.mu.RUnlock()
	if !ok {
		c.mu.Lock()
		if e, ok = c.windows[k]; !ok {
			evictLRU(c.windows, c.limit, &c.stats.windowEvictions, &globalCorpusStats.windowEvictions)
			e = &windowEntry{seq: c.tick.Add(1)}
			c.windows[k] = e
		}
		c.mu.Unlock()
	}
	if ok {
		c.stats.windowHits.Add(1)
		globalCorpusStats.windowHits.Add(1)
	} else {
		c.stats.windowMisses.Add(1)
		globalCorpusStats.windowMisses.Add(1)
	}
	e.lastUse.Store(c.tick.Add(1))
	e.once.Do(func() {
		perSeries, err := c.labelsFor(pcfg)
		if err != nil {
			e.err = err
			return
		}
		total := 0
		for _, labels := range perSeries {
			if n := len(labels) - opts.Omega + 1; n > 0 {
				total += n
			}
		}
		pooled := make([]core.Observation, 0, total)
		for i, labels := range perSeries {
			s := c.series[i]
			if opts.Omega > len(labels) {
				e.err = fmt.Errorf("cdt: series %q: omega %d exceeds %d labels", s.Name, opts.Omega, len(labels))
				return
			}
			obs, err := core.Windows(labels, s.Anomalies, opts.Omega)
			if err != nil {
				e.err = fmt.Errorf("cdt: series %q: %w", s.Name, err)
				return
			}
			pooled = append(pooled, obs...)
		}
		e.obs = pooled
	})
	return e.obs, e.err
}

// AtResolution returns the corpus downsampled by factor with the named
// bucket aggregator ("mean" by default, or "max") — the per-resolution
// view a pyramid trains its scale models on. Factor 1 returns the
// receiver itself; other factors are derived once and memoized, so
// per-resolution labelings and window pools are just more cache keys of
// the derived corpus. Anomaly annotations survive downsampling (a
// bucket is anomalous when any covered point was). The derived corpus
// shares the receiver's cache-size bound.
func (c *Corpus) AtResolution(factor int, aggregator string) (*Corpus, error) {
	if factor < 1 {
		return nil, fmt.Errorf("cdt: resolution factor %d, want >= 1", factor)
	}
	agg, err := aggregatorOf(aggregator)
	if err != nil {
		return nil, err
	}
	if factor == 1 {
		return c, nil
	}
	k := resolutionKey{factor: factor, agg: canonicalAggregator(aggregator)}
	c.mu.RLock()
	e, ok := c.resolutions[k]
	c.mu.RUnlock()
	if !ok {
		c.mu.Lock()
		if e, ok = c.resolutions[k]; !ok {
			e = &resolutionEntry{}
			c.resolutions[k] = e
		}
		c.mu.Unlock()
	}
	e.once.Do(func() {
		ds := make([]*Series, len(c.series))
		for i, s := range c.series {
			d, err := timeseries.Downsample(s, factor, agg)
			if err != nil {
				e.err = fmt.Errorf("cdt: series %q at 1/%d resolution: %w", s.Name, factor, err)
				return
			}
			ds[i] = d
		}
		e.c, e.err = NewCorpusSize(ds, c.limit)
	})
	return e.c, e.err
}

// Fit trains a CDT on the corpus — the same pipeline as the package-level
// Fit (which is now a thin wrapper over a throwaway corpus), but pulling
// the pooled windows out of the cache so repeated fits at overlapping
// hyper-parameters pay only for tree induction.
func (c *Corpus) Fit(opts Options) (*Model, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	pooled, err := c.Observations(opts)
	if err != nil {
		return nil, err
	}
	tree, err := core.Build(pooled, opts.coreOptions())
	if err != nil {
		return nil, err
	}
	m := &Model{Opts: opts, tree: tree, pcfg: opts.patternConfig()}
	m.raw = rules.FromTree(tree, opts.LeafPolicy)
	m.finalizeRules()
	return m, nil
}

// lastUser is the shared shape of the two cache entry types, letting one
// LRU eviction routine serve both maps.
type lastUser interface {
	lastUsed() uint64
	insertedAt() uint64
}

func (e *labelEntry) lastUsed() uint64    { return e.lastUse.Load() }
func (e *labelEntry) insertedAt() uint64  { return e.seq }
func (e *windowEntry) lastUsed() uint64   { return e.lastUse.Load() }
func (e *windowEntry) insertedAt() uint64 { return e.seq }

// evictLRU removes least-recently-used entries until the map has room for
// one more under limit, bumping the given eviction counters once per
// victim. Called with the corpus write lock held. Evicted slices stay
// valid for any goroutine that already holds them; they are simply
// recomputed on the next request. Last-use ties (e.g. entries that were
// inserted but never re-used) are broken by insertion order — a strict
// comparison on map iteration alone would leave the victim to the
// randomized iteration order (caught by cdtlint's detfloat).
func evictLRU[K comparable, E lastUser](m map[K]E, limit int, evicted ...*atomic.Uint64) {
	for len(m) >= limit {
		var victim K
		minUse, minSeq := uint64(math.MaxUint64), uint64(math.MaxUint64)
		for k, e := range m {
			u, s := e.lastUsed(), e.insertedAt()
			if u < minUse || (u == minUse && s < minSeq) {
				minUse, minSeq, victim = u, s, k
			}
		}
		delete(m, victim)
		for _, c := range evicted {
			c.Add(1)
		}
	}
}
