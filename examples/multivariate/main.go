// Multivariate monitoring: one CDT per sensor dimension, fused verdicts
// (the paper's future-work extension). A pump is instrumented with
// temperature and vibration sensors; failures show up in vibration only,
// so the "any dimension" fusion catches them while every rule stays
// readable per sensor.
//
//	go run ./examples/multivariate
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	cdt "cdt"
)

// pumpFeed simulates an instrumented pump; failures spike the vibration
// channel only.
func pumpFeed(name string, n int, failures []int, seed int64) *cdt.MultiSeries {
	rng := rand.New(rand.NewSource(seed))
	temp := make([]float64, n)
	vib := make([]float64, n)
	anoms := make([]bool, n)
	for i := range temp {
		temp[i] = 60 + 5*math.Sin(float64(i)/20) + rng.Float64()
		vib[i] = 2 + 0.5*math.Sin(float64(i)/7) + 0.1*rng.Float64()
	}
	for _, at := range failures {
		vib[at] = 15 // bearing fault signature
		anoms[at] = true
	}
	return &cdt.MultiSeries{
		Name:      name,
		Dims:      []*cdt.Series{cdt.NewSeries("temperature", temp), cdt.NewSeries("vibration", vib)},
		Anomalies: anoms,
	}
}

func main() {
	train := pumpFeed("pump-7 (history)", 500, []int{80, 210, 350, 460}, 1)
	live := pumpFeed("pump-7 (this week)", 300, []int{120, 250}, 2)

	model, err := cdt.FitMulti([]*cdt.MultiSeries{train}, cdt.Options{Omega: 5, Delta: 2}, cdt.CombineAny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Trained %d per-dimension models (%d rules total, fusion policy %q):\n\n",
		model.Dimensions(), model.NumRules(), model.Policy)
	fmt.Print(model.RuleText())

	rep, err := model.Evaluate([]*cdt.MultiSeries{live})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nThis week's audit: F1=%.2f (precision %.2f, recall %.2f over %d windows)\n",
		rep.F1, rep.Confusion.Precision(), rep.Confusion.Recall(), rep.Confusion.Total())

	windows, err := model.DetectWindows(live)
	if err != nil {
		log.Fatal(err)
	}
	first := -1
	for wi, fired := range windows {
		if fired {
			first = wi
			break
		}
	}
	if first >= 0 {
		fmt.Printf("first alert: window starting at point %d (failure planted at 120)\n", first+1)
	}
}
