package cdt

// Request-scoped scoring observability: the serving layer threads a
// per-scale sweep observer through the detection context so pyramid
// sweeps can feed pre-resolved latency histograms without this package
// knowing about metric registries — and without wall-clock reads in the
// detfloat-guarded training package (timing goes through the sanctioned
// telemetry.Stopwatch boundary).

import "context"

// ScaleSweepObserver receives the wall-clock cost of one pyramid scale
// sweep: the scale's index into ArtifactInfo.Scales, its downsample
// factor, and the elapsed seconds (transform + label + engine sweep).
type ScaleSweepObserver func(scaleIndex, factor int, seconds float64)

type sweepObserverKey struct{}

// WithScaleSweepObserver returns ctx carrying fn; pyramid scoring calls
// it once per scale per scored series. A nil fn clears the observer.
func WithScaleSweepObserver(ctx context.Context, fn ScaleSweepObserver) context.Context {
	return context.WithValue(ctx, sweepObserverKey{}, fn)
}

// scaleSweepObserver extracts the observer (nil when absent).
func scaleSweepObserver(ctx context.Context) ScaleSweepObserver {
	fn, _ := ctx.Value(sweepObserverKey{}).(ScaleSweepObserver)
	return fn
}
