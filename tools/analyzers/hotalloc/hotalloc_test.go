package hotalloc_test

import (
	"testing"

	"cdt/tools/analysistest"
	"cdt/tools/analyzers/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotalloc.Analyzer, "hotalloc")
}
