package experiments

import (
	"fmt"
	"math"
	"strings"

	cdt "cdt"
	"cdt/internal/evalmetrics"
	"cdt/internal/matrixprofile"
	"cdt/internal/pav"
	"cdt/internal/pbad"
	"cdt/internal/timeseries"
)

// Table3Methods lists the §4.2 comparison's methods in column order.
var Table3Methods = []string{"CDT", "PBAD", "PAV", "MP"}

// baselineWindowLen and baselineStep are the recommended settings the
// paper uses for all pattern-based baselines (§4.2).
const (
	baselineWindowLen = 12
	baselineStep      = 6
)

// Table3Row is one dataset's F1 per method (paper Table 3).
type Table3Row struct {
	Dataset string
	// F1 holds scores in Table3Methods order.
	F1 [4]float64
	// Paper holds the paper's scores in the same order.
	Paper [4]float64
}

// Table3 compares CDT against the pattern-based baselines. CDT follows
// the supervised protocol of §4.1 (train on 60%+20%, F1-optimal
// hyper-parameters, scored on the 20% test windows); the unsupervised
// baselines follow §4.2 (model on the full series, windows of length 12
// step 6, scores binarized at the contamination quantile).
func (s *Suite) Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, name := range DatasetNames {
		row := Table3Row{Dataset: name}
		if p, ok := PaperTable3[name]; ok {
			row.Paper = p
		}

		model, prep, err := s.FitTuned(name, cdt.ObjectiveF1)
		if err != nil {
			return nil, err
		}
		testCorpus, err := prep.TestCorpus()
		if err != nil {
			return nil, err
		}
		rep, err := model.EvaluateCorpus(testCorpus)
		if err != nil {
			return nil, err
		}
		row.F1[0] = rep.F1

		for mi, method := range []string{"PBAD", "PAV", "MP"} {
			f1, err := s.baselineF1(prep, method)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s on %s: %w", method, name, err)
			}
			row.F1[mi+1] = f1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// baselineF1 scores one unsupervised baseline on a dataset with the
// shared window protocol.
func (s *Suite) baselineF1(p *Prepared, method string) (float64, error) {
	var scores []float64
	var truth []bool
	for _, series := range p.Series {
		starts := windowStarts(series.Len(), baselineWindowLen, baselineStep)
		if len(starts) == 0 {
			continue
		}
		var wscores []float64
		switch method {
		case "PBAD":
			windows, err := pbad.Detect(series.Values, pbad.Options{
				WindowLen: baselineWindowLen,
				Step:      baselineStep,
			})
			if err != nil {
				return 0, err
			}
			wscores = make([]float64, len(windows))
			for i, w := range windows {
				wscores[i] = w.Score
			}
		case "PAV":
			points, err := pav.Scores(series.Values, pav.Options{})
			if err != nil {
				return 0, err
			}
			wscores = pav.WindowScores(points, starts, baselineWindowLen)
		case "MP":
			m := baselineWindowLen
			if series.Len() < 2*m {
				continue
			}
			profile, err := matrixprofile.Compute(series.Values, m)
			if err != nil {
				return 0, err
			}
			wscores = profile.WindowScores(starts, baselineWindowLen)
		default:
			return 0, fmt.Errorf("unknown baseline %q", method)
		}
		if len(wscores) != len(starts) {
			return 0, fmt.Errorf("%s produced %d scores for %d windows", method, len(wscores), len(starts))
		}
		scores = append(scores, wscores...)
		truth = append(truth, windowTruth(series, starts, baselineWindowLen)...)
	}
	if len(scores) == 0 {
		return 0, fmt.Errorf("no windows scored")
	}
	contamination := rate(truth)
	predicted := evalmetrics.BinarizeTop(scores, contamination)
	return evalmetrics.FromBools(predicted, truth).F1(), nil
}

// windowStarts enumerates fixed-stride window starts.
func windowStarts(n, windowLen, step int) []int {
	var out []int
	for start := 0; start+windowLen <= n; start += step {
		out = append(out, start)
	}
	return out
}

// windowTruth flags windows containing at least one annotated anomaly.
func windowTruth(s *timeseries.Series, starts []int, windowLen int) []bool {
	out := make([]bool, len(starts))
	for wi, start := range starts {
		for i := start; i < start+windowLen && i < s.Len(); i++ {
			if s.Anomalies[i] {
				out[wi] = true
				break
			}
		}
	}
	return out
}

func rate(flags []bool) float64 {
	if len(flags) == 0 {
		return 0
	}
	n := 0
	for _, f := range flags {
		if f {
			n++
		}
	}
	return float64(n) / float64(len(flags))
}

// FormatTable3 renders Table 3 with averages, ranks, and paper values.
func FormatTable3(rows []Table3Row) string {
	header := []string{"Dataset"}
	for _, m := range Table3Methods {
		header = append(header, m, "paper")
	}
	var body [][]string
	var sums, rankSums [4]float64
	for _, r := range rows {
		line := []string{r.Dataset}
		for i := range Table3Methods {
			line = append(line, fmt.Sprintf("%.2f", r.F1[i]), fmt.Sprintf("%.2f", r.Paper[i]))
			sums[i] += r.F1[i]
		}
		ranks := rankOf(r.F1[:])
		for i, rk := range ranks {
			rankSums[i] += rk
		}
		body = append(body, line)
	}
	avg := []string{"Average"}
	for i := range Table3Methods {
		avg = append(avg, fmt.Sprintf("%.2f", sums[i]/float64(len(rows))), fmt.Sprintf("%.2f", PaperTable3Average[i]))
	}
	body = append(body, avg)
	var b strings.Builder
	b.WriteString("Table 3: anomaly-detection F1, CDT vs pattern-based baselines\n")
	b.WriteString(FormatTable(header, body))
	b.WriteString("Average rank: ")
	for i, m := range Table3Methods {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %.2f", m, rankSums[i]/float64(len(rows)))
	}
	b.WriteString(" (paper: CDT best overall, winning 5/6 datasets)\n")
	return b.String()
}

// Table3Averaged reruns Table 3 across several seeds and reports
// per-method mean and standard deviation of the dataset-averaged F1 —
// the robustness view behind the paper's "our method is more stable"
// claim. Each seed regenerates the synthetic datasets and re-tunes.
type Table3Averaged struct {
	Method   string
	Mean, SD float64
}

// Table3AcrossSeeds runs the Table 3 pipeline once per seed.
func Table3AcrossSeeds(cfg Config, seeds []int64) ([]Table3Averaged, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: no seeds")
	}
	perMethod := make([][]float64, len(Table3Methods))
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		s := NewSuite(c)
		rows, err := s.Table3()
		if err != nil {
			return nil, err
		}
		for mi := range Table3Methods {
			sum := 0.0
			for _, r := range rows {
				sum += r.F1[mi]
			}
			perMethod[mi] = append(perMethod[mi], sum/float64(len(rows)))
		}
	}
	out := make([]Table3Averaged, len(Table3Methods))
	for mi, m := range Table3Methods {
		mean, sd := meanSD(perMethod[mi])
		out[mi] = Table3Averaged{Method: m, Mean: mean, SD: sd}
	}
	return out, nil
}

func meanSD(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}
