// Package engine compiles a trained rule set into one immutable matcher
// shared by every detection surface: batch detection
// (Model.DetectWindows, DetectExplained, EvaluateCorpus), streaming
// (Stream), and serving (internal/server). A Model compiles its engine
// once at Fit/Load time; afterwards the engine is read-only and safe for
// any number of concurrent cursors and sweeps.
//
// Compile deduplicates the rule's compositions and builds, per match
// mode, one automaton over the interned label alphabet:
//
//   - MatchContiguous: a dense-table Aho–Corasick automaton. Each label
//     advances one DFA state and reports the compositions whose
//     occurrence ends there; per composition the engine keeps the last
//     window start its most recent occurrence still covers (global end
//     − len + 1), so "composition ⊆o window" collapses to one
//     comparison — until[c] >= ws for a window starting at global
//     position ws.
//   - MatchSubsequence: the bitmask latest-start NFA of core.SubseqNFA;
//     "composition ⊆o window" is LatestStart(c) >= ws.
//
// Both automata work in global positions and never reset between
// windows, runs, or streams (stale state always fails the >= ws test),
// which is what makes the incremental view O(1) amortized per label.
// Per-window fired predicates then come from precompiled bitset masks
// over the composition-match bitset: predicate p fires iff
// matched ⊇ pos[p] and matched ∩ neg[p] = ∅.
//
// Bit-identity contract: for every window, in both match modes, the
// fired-predicate set equals evaluating rules.Predicate.Matches — i.e.
// per-window Composition.MatchedBy — on that window. The differential
// and fuzz tests in this package hold the engine to that contract;
// rules.Rule.Detect stays in the tree as the executable reference
// semantics.
package engine

import (
	"sync"

	"cdt/internal/core"
	"cdt/internal/pattern"
	"cdt/internal/rules"
)

// Engine is the compiled, immutable matcher for one rule set at one
// window size. Safe for concurrent use; per-consumer mutable state lives
// in Cursors and in a pooled scratch for EvalWindow.
type Engine struct {
	mode  core.MatchMode
	omega int

	numPreds int
	// comps are the deduplicated non-empty compositions referenced by
	// any literal (retained read-only views of the rule's label slices);
	// compLen caches their lengths, words the bitset width over them.
	comps   [][]pattern.Label
	compLen []int
	words   int

	// pos and neg are the per-predicate literal masks over the
	// composition bitset. A predicate with empty masks fires on every
	// window (an empty conjunction is TRUE, and positive empty
	// compositions impose no constraint).
	pos, neg [][]uint64
	// deadAll marks predicates containing a negated empty composition:
	// an empty composition matches every window, so they never fire.
	deadAll []bool
	// live lists the predicates that can fire on an ω-window: not
	// deadAll and no positive composition longer than ω. The cursor path
	// walks only these.
	live []int32

	ac *acAutomaton // contiguous mode; nil when comps is empty

	scratch sync.Pool // *matchState, for EvalWindow
}

// Compile builds the engine for a rule set at window size omega
// (omega >= 1). The rule's composition label slices are retained as
// read-only views.
func Compile(r rules.Rule, omega int) *Engine {
	e := &Engine{mode: r.Mode, omega: omega, numPreds: len(r.Predicates)}
	index := make(map[string]int32)
	posList := make([][]int32, e.numPreds)
	negList := make([][]int32, e.numPreds)
	e.deadAll = make([]bool, e.numPreds)
	for pi, p := range r.Predicates {
		for _, lit := range p.Literals {
			if len(lit.Comp.Labels) == 0 {
				if lit.Neg {
					e.deadAll[pi] = true
				}
				continue
			}
			k := lit.Comp.Key()
			ci, ok := index[k]
			if !ok {
				ci = int32(len(e.comps))
				index[k] = ci
				e.comps = append(e.comps, lit.Comp.Labels)
			}
			if lit.Neg {
				negList[pi] = append(negList[pi], ci)
			} else {
				posList[pi] = append(posList[pi], ci)
			}
		}
	}
	e.compLen = make([]int, len(e.comps))
	for ci, c := range e.comps {
		e.compLen[ci] = len(c)
	}
	e.words = (len(e.comps) + 63) / 64
	e.pos = make([][]uint64, e.numPreds)
	e.neg = make([][]uint64, e.numPreds)
	for pi := 0; pi < e.numPreds; pi++ {
		e.pos[pi] = maskOf(posList[pi], e.words)
		e.neg[pi] = maskOf(negList[pi], e.words)
		if e.deadAll[pi] {
			continue
		}
		alive := true
		for _, ci := range posList[pi] {
			if e.compLen[ci] > omega {
				alive = false
				break
			}
		}
		if alive {
			e.live = append(e.live, int32(pi))
		}
	}
	if e.mode == core.MatchContiguous && len(e.comps) > 0 {
		e.ac = newAC(e.comps)
	}
	e.scratch.New = func() any { return e.newMatchState() }
	return e
}

func maskOf(cis []int32, words int) []uint64 {
	if len(cis) == 0 {
		return nil
	}
	m := make([]uint64, words)
	for _, ci := range cis {
		m[ci>>6] |= 1 << uint(ci&63)
	}
	return m
}

// Mode returns the ⊆o semantics the engine was compiled for.
func (e *Engine) Mode() core.MatchMode { return e.mode }

// Omega returns the window size the engine was compiled for.
func (e *Engine) Omega() int { return e.omega }

// NumPredicates returns the number of rule predicates.
func (e *Engine) NumPredicates() int { return e.numPreds }

// matchState is the per-consumer mutable automaton state: one per
// Cursor, pooled for EvalWindow. Positions are global (labels consumed
// since creation); neither automaton re-initializes between windows.
type matchState struct {
	pos   int
	state int32 // AC state (contiguous mode)
	// until holds, per comp, the last window start its latest occurrence
	// still covers: lastEnd − len + 1, in global positions (contiguous).
	until   []int
	nfa     *core.SubseqNFA // subsequence mode
	matched []uint64
	// active lists the compositions whose bit is currently set in matched
	// (contiguous cursor path only, where matched is maintained by events:
	// an automaton hit sets a bit, and the per-window expiry scan walks
	// just this list instead of every composition).
	active []int32
	// prev/fired cache the last evaluated window: when the matched
	// bitset is unchanged — the overwhelmingly common case on normal
	// stretches, where it stays empty — the fired set is reused without
	// re-testing any predicate mask.
	prev       []uint64
	fired      []int
	firedValid bool
}

func (e *Engine) newMatchState() *matchState {
	s := &matchState{
		matched: make([]uint64, e.words),
		prev:    make([]uint64, e.words),
	}
	if e.mode == core.MatchContiguous {
		s.until = make([]int, len(e.comps))
		for i := range s.until {
			s.until[i] = -1
		}
	} else {
		s.nfa = core.NewSubseqNFA(e.comps)
	}
	return s
}

// step consumes one label, updating per-composition occurrence state.
func (s *matchState) step(e *Engine, l pattern.Label) {
	if e.mode == core.MatchContiguous {
		if e.ac != nil {
			s.state = e.ac.step(s.state, l)
			for _, ci := range e.ac.out[s.state] {
				s.until[ci] = s.pos - e.compLen[ci] + 1
			}
		}
	} else {
		s.nfa.Step(l)
	}
	s.pos++
}

// setMatched rebuilds the composition-match bitset for the window of
// global positions [ws, s.pos-1].
func (s *matchState) setMatched(e *Engine, ws int) {
	clear(s.matched)
	if e.mode == core.MatchContiguous {
		for ci := range e.compLen {
			if s.until[ci] >= ws {
				s.matched[ci>>6] |= 1 << uint(ci&63)
			}
		}
		return
	}
	for ci := range e.comps {
		if s.nfa.LatestStart(ci) >= ws {
			s.matched[ci>>6] |= 1 << uint(ci&63)
		}
	}
}

// evalCached returns the fired set for the current matched bitset,
// reusing the previous window's result when the bitset is unchanged.
func (s *matchState) evalCached(e *Engine) []int {
	same := s.firedValid
	if same {
		for w, m := range s.matched {
			if s.prev[w] != m {
				same = false
				break
			}
		}
	}
	if !same {
		s.fired = e.appendFired(s.matched, true, s.fired[:0])
		copy(s.prev, s.matched)
		s.firedValid = true
	}
	return s.fired
}

// appendFired appends the 0-based indices of predicates firing on the
// matched bitset. omegaOnly restricts the scan to predicates alive at
// ω-windows (the cursor/sweep path); EvalWindow passes false because a
// longer window can satisfy compositions longer than ω.
func (e *Engine) appendFired(matched []uint64, omegaOnly bool, dst []int) []int {
	if omegaOnly {
		for _, pi := range e.live {
			if e.fires(matched, int(pi)) {
				dst = append(dst, int(pi))
			}
		}
		return dst
	}
	for pi := 0; pi < e.numPreds; pi++ {
		if e.deadAll[pi] {
			continue
		}
		if e.fires(matched, pi) {
			dst = append(dst, pi)
		}
	}
	return dst
}

func (e *Engine) fires(matched []uint64, pi int) bool {
	for w, m := range e.pos[pi] {
		if matched[w]&m != m {
			return false
		}
	}
	for w, m := range e.neg[pi] {
		if matched[w]&m != 0 {
			return false
		}
	}
	return true
}

// Cursor is the incremental view: one label in, O(1) amortized state
// work, and for each label completing an ω-window the fired-predicate
// set of that window. Not safe for concurrent use; create one per
// consumer (the Engine itself stays shared).
type Cursor struct {
	e      *Engine
	s      *matchState
	runLen int
}

// NewCursor starts an incremental matcher against the shared engine.
func (e *Engine) NewCursor() *Cursor {
	return &Cursor{e: e, s: e.newMatchState()}
}

// Step consumes the next label. complete reports whether a full
// ω-window of the current run ended at this label; fired then lists the
// 0-based indices of the rule predicates matching that window, in rule
// order (empty when the window is normal, valid only until the next
// Step).
//
//cdtlint:hotpath
func (c *Cursor) Step(l pattern.Label) (fired []int, complete bool) {
	e := c.e
	if e.mode == core.MatchContiguous {
		return c.stepContiguous(l)
	}
	c.s.step(e, l)
	c.runLen++
	if c.runLen < e.omega {
		return nil, false
	}
	c.s.setMatched(e, c.s.pos-e.omega)
	return c.s.evalCached(e), true
}

// stepContiguous is the contiguous-mode cursor step. Instead of
// rebuilding the matched bitset every window it maintains it by events:
// an automaton hit sets the composition's bit (for compositions that fit
// in ω — longer ones can never match an ω-window), and the expiry scan
// over the short active list clears bits whose latest occurrence the
// advancing window start has left behind. On normal stretches both are
// no-ops, the cached fired set is returned untouched, and the per-label
// cost collapses to one automaton transition.
func (c *Cursor) stepContiguous(l pattern.Label) ([]int, bool) {
	e, s := c.e, c.s
	if e.ac != nil {
		s.state = e.ac.step(s.state, l)
		for _, ci := range e.ac.out[s.state] {
			s.until[ci] = s.pos - e.compLen[ci] + 1
			w, b := ci>>6, uint64(1)<<uint(ci&63)
			if s.matched[w]&b == 0 && e.compLen[ci] <= e.omega {
				s.matched[w] |= b
				s.active = append(s.active, ci)
				s.firedValid = false
			}
		}
	}
	s.pos++
	c.runLen++
	if c.runLen < e.omega {
		return nil, false
	}
	if len(s.active) > 0 {
		ws := s.pos - e.omega
		for i := 0; i < len(s.active); {
			ci := s.active[i]
			if s.until[ci] < ws {
				s.matched[ci>>6] &^= 1 << uint(ci&63)
				s.active[i] = s.active[len(s.active)-1]
				s.active = s.active[:len(s.active)-1]
				s.firedValid = false
			} else {
				i++
			}
		}
	}
	if !s.firedValid {
		s.fired = e.appendFired(s.matched, true, s.fired[:0])
		s.firedValid = true
	}
	return s.fired, true
}

// RunLen returns the number of labels consumed since the last Reset (or
// creation).
func (c *Cursor) RunLen() int { return c.runLen }

// Reset starts a new run: subsequent windows never span the boundary.
// Automaton state carries over unreset — global positions guarantee
// stale occurrences cannot fire post-Reset windows — so Reset is O(1).
func (c *Cursor) Reset() {
	c.runLen = 0
	c.s.state = 0
}

// Sweep evaluates every sliding ω-window of one labeled series in a
// single pass, returning per-window marks. Window w covers
// labels[w : w+ω]; a series shorter than ω yields zero windows.
//
//cdtlint:hotpath loops
func (e *Engine) Sweep(labels []pattern.Label) *Marks {
	n := len(labels) - e.omega + 1
	if n < 0 {
		n = 0
	}
	m := newMarks(e.numPreds, n)
	cur := e.NewCursor()
	w := 0
	for _, l := range labels {
		if fired, ok := cur.Step(l); ok {
			m.set(w, fired)
			w++
		}
	}
	return m
}

// SweepObservations evaluates a pooled observation set — the Corpus
// layout: maximal runs of consecutive sliding ω-windows with isolated
// windows in between — paying one Step per window inside a run. Marks
// index i corresponds to obs[i]. Observations whose length differs from
// ω (not produced by the pooling, but legal for direct callers) are
// evaluated standalone with whole-window semantics.
//
//cdtlint:hotpath loops
func (e *Engine) SweepObservations(obs []core.Observation) *Marks {
	m := newMarks(e.numPreds, len(obs))
	cur := e.NewCursor()
	var prev []pattern.Label
	for i := range obs {
		ls := obs[i].Labels
		switch {
		case len(ls) != e.omega:
			m.set(i, e.EvalWindow(ls, nil))
			prev = nil
			continue
		case prev != nil && core.SlidingAdjacent(prev, ls):
			fired, _ := cur.Step(ls[e.omega-1])
			m.set(i, fired)
		default:
			cur.Reset()
			var fired []int
			for _, l := range ls {
				fired, _ = cur.Step(l)
			}
			m.set(i, fired)
		}
		prev = ls
	}
	return m
}

// EvalWindow evaluates one window of labels in isolation — whole-slice
// ⊆o semantics, exactly rules.Predicate.Matches per predicate —
// appending the 0-based indices of fired predicates to dst. Unlike the
// cursor path it makes no assumption that len(labels) == ω: public
// callers (Model.FiredPredicates) accept windows of any length, where
// compositions longer than ω may still match. Safe for concurrent use.
//
//cdtlint:hotpath
func (e *Engine) EvalWindow(labels []pattern.Label, dst []int) []int {
	s := e.scratch.Get().(*matchState)
	base := s.pos
	s.state = 0
	for _, l := range labels {
		s.step(e, l)
	}
	s.setMatched(e, base)
	dst = e.appendFired(s.matched, false, dst)
	e.scratch.Put(s)
	return dst
}
