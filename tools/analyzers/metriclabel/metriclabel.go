// Package metriclabel guards the telemetry Vec discipline
// (internal/telemetry): Vec.With is a mutex-guarded lookup meant to run
// at registration/setup time, and label values index a child map that
// lives for the process's lifetime.
//
// Two misuse shapes are reported, for any method named With on a
// *SomethingVec type (structurally matched, so the real telemetry
// package and test fodder both qualify):
//
//  1. With inside a loop — in a function that may run at request
//     frequency. Each call re-locks the registry and re-hashes the
//     label tuple; detection loops run per observation. The child must
//     be resolved before the loop, or counts accumulated and applied
//     once after it. The apply half of that idiom — ranging over the
//     accumulation map and calling With once per distinct label — is
//     recognized and exempt: a range over a map is bounded by distinct
//     keys, not by observations. (A map range nested inside an
//     observation loop stays flagged: it inherits the outer loop's
//     per-iteration cost.)
//
//     Whether the enclosing function runs at request frequency is read
//     off the program call graph rather than assumed: a function is
//     hot when its value escapes (stored in a variable or passed as a
//     value — an HTTP handler, a callback), or when any call site
//     invokes it inside a loop, and hotness floods to everything a hot
//     function statically calls. A function reached only by plain
//     static calls — a registration helper invoked a fixed number of
//     times at setup — iterates at registration frequency, and its
//     With-in-loop is exempt. A function never called in the load
//     stays flagged: the analyzer cannot bound its frequency. Only
//     library call sites count; a test driving a constructor in a
//     table loop runs at test frequency and says nothing about
//     production.
//
//  2. Unbounded label values. A label minted from fmt/strconv
//     formatting, an error message, or a numeric conversion gives the
//     metric unbounded cardinality — every new value is a new child
//     that is never dropped. Conversions from named string types
//     (string(d.Type) on an AnomalyType) are the sanctioned idiom: the
//     value set is a small enum by construction. This rule does not
//     depend on call frequency and always applies.
package metriclabel

import (
	"go/ast"
	"go/types"
	"strings"

	"cdt/tools/analysis"
)

// Analyzer is the metriclabel check.
var Analyzer = &analysis.Analyzer{
	Name: "metriclabel",
	Doc:  "requires telemetry Vec children to be resolved outside loops and label values to come from bounded sets",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	exempt := loopExemptions(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walk(pass, fd.Body, false, !exempt[fd])
		}
	}
	return nil
}

// loopExemptions decides per declared function whether the loop rule is
// waived: the function's frequency is bounded by its static call sites
// (it has at least one, none in a loop, and its value never escapes —
// directly or via a hot caller), so a With inside its loops runs at
// registration frequency. Returns nil (no exemptions) when the pass has
// no whole-program view.
func loopExemptions(pass *analysis.Pass) map[*ast.FuncDecl]bool {
	if pass.Prog == nil {
		return nil
	}
	cg := pass.Prog.CallGraph()
	indegree := make(map[string]int)
	hot := make(map[string]bool)
	var queue []string
	raise := func(id string) {
		if !hot[id] {
			hot[id] = true
			queue = append(queue, id)
		}
	}
	// Only library call sites speak to production frequency: a test
	// driving a constructor in a table loop runs at test frequency and
	// must not make every registrar behind it hot.
	for _, node := range cg.Nodes {
		if node.Unit.Kind != analysis.Lib {
			continue
		}
		for _, cs := range node.Calls {
			indegree[cs.Callee]++
			if cs.InLoop {
				raise(cs.Callee)
			}
		}
	}
	for id := range escapingFuncs(pass.Prog) {
		raise(id)
	}
	// Flood: everything a hot function calls runs at its frequency.
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		node := cg.Nodes[id]
		if node == nil {
			continue
		}
		for _, cs := range node.Calls {
			raise(cs.Callee)
		}
	}
	exempt := make(map[*ast.FuncDecl]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			id := analysis.FuncID(obj)
			if !hot[id] && indegree[id] > 0 {
				exempt[fd] = true
			}
		}
	}
	return exempt
}

// escapingFuncs collects every declared function whose value is used
// outside a call position anywhere in the load — stored, passed, or
// converted (an HTTP handler registration, a callback). An escaped
// function's invocation frequency is unknowable statically, so it
// seeds the hot set.
func escapingFuncs(prog *analysis.Program) map[string]bool {
	esc := make(map[string]bool)
	for _, u := range prog.Units {
		if u.Kind != analysis.Lib {
			continue
		}
		for _, f := range u.Files {
			// First pass: the identifiers that are call targets.
			called := make(map[*ast.Ident]bool)
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					called[fun] = true
				case *ast.SelectorExpr:
					called[fun.Sel] = true
				}
				return true
			})
			// Second pass: any other identifier resolving to a function
			// is a value use.
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || called[id] {
					return true
				}
				if fn, ok := u.Info.Uses[id].(*types.Func); ok {
					esc[analysis.FuncID(fn)] = true
				}
				return true
			})
		}
	}
	return esc
}

// walk visits n tracking loop depth, mirroring the call-graph walker: a
// With reached inside a for/range body (even via a func literal defined
// there) runs per iteration. loopRule gates rule 1 — false for
// functions whose call sites bound their frequency; the cardinality
// rule applies either way.
func walk(pass *analysis.Pass, n ast.Node, inLoop, loopRule bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ForStmt:
			if m.Init != nil {
				walk(pass, m.Init, inLoop, loopRule)
			}
			if m.Cond != nil {
				walk(pass, m.Cond, true, loopRule)
			}
			if m.Post != nil {
				walk(pass, m.Post, true, loopRule)
			}
			walk(pass, m.Body, true, loopRule)
			return false
		case *ast.RangeStmt:
			walk(pass, m.X, inLoop, loopRule)
			// Ranging over a map is the accumulate-then-apply idiom's
			// second half: iterations are bounded by distinct keys. It
			// does not introduce per-observation cost, but it does not
			// clear hotness inherited from an enclosing loop either.
			walk(pass, m.Body, inLoop || !rangesOverMap(pass, m), loopRule)
			return false
		case *ast.CallExpr:
			checkWith(pass, m, inLoop && loopRule)
			return true
		}
		return true
	})
}

// rangesOverMap reports whether the range statement iterates a map.
func rangesOverMap(pass *analysis.Pass, r *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[r.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkWith applies both rules to one call expression, if it is a
// Vec.With call.
func checkWith(pass *analysis.Pass, call *ast.CallExpr, inLoop bool) {
	vec := vecName(pass, call)
	if vec == "" {
		return
	}
	if inLoop {
		pass.Reportf(call.Pos(), "%s.With inside a loop re-resolves the child per iteration; hoist the lookup out of the loop (or accumulate and apply once after it)", vec)
	}
	for _, arg := range call.Args {
		if reason := unboundedReason(pass, arg); reason != "" {
			pass.Reportf(arg.Pos(), "unbounded label value (%s) passed to %s.With; label cardinality must be bounded — use a small named-string enum", reason, vec)
		}
	}
}

// vecName matches a call of the form x.With(...) where x is a (pointer
// to a) named struct whose name ends in "Vec", returning the type name.
func vecName(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "With" {
		return ""
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return ""
	}
	recv := s.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || !strings.HasSuffix(named.Obj().Name(), "Vec") {
		return ""
	}
	return named.Obj().Name()
}

// unboundedReason classifies a label argument minted from an unbounded
// source, returning "" for bounded shapes.
func unboundedReason(pass *analysis.Pass, arg ast.Expr) string {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return ""
	}
	// Conversion: string(x). Named string types are the bounded enum
	// idiom; numeric conversions mint a fresh value per input.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if !isStringType(tv.Type) || len(call.Args) != 1 {
			return ""
		}
		argTV, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok {
			return ""
		}
		if b, ok := argTV.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
			return "numeric conversion"
		}
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
		if sel.Sel.Name == "Error" && len(call.Args) == 0 {
			return "error message"
		}
		return ""
	}
	switch pkg := packagePathOf(pass, sel); pkg {
	case "fmt":
		return "fmt-formatted value"
	case "strconv":
		name := sel.Sel.Name
		if name == "Itoa" || strings.HasPrefix(name, "Format") || strings.HasPrefix(name, "Quote") {
			return "strconv-formatted value"
		}
	}
	return ""
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// packagePathOf resolves a selector's base to an imported package path,
// or "".
func packagePathOf(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
