package lockdoc_test

import (
	"testing"

	"cdt/tools/analysistest"
	"cdt/tools/analyzers/lockdoc"
)

func TestLockdoc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockdoc.Analyzer, "lockdoc")
}
