package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	cdt "cdt"
	"cdt/internal/trace"
)

// Sessions manages live streaming-detection sessions. Stream handles
// (cdt.Stream, cdt.PyramidStream) are not safe for concurrent use (each
// owns incremental cursors over its model's shared read-only rule
// engines), so each session wraps its
// stream in a mutex; the manager itself guards the id→session map and
// evicts sessions that have been idle longer than the TTL (a monitor
// that silently went away must not leak its cursor state forever).
type Sessions struct {
	ttl time.Duration
	tel *serverMetrics // nil in unit tests that build Sessions bare

	mu sync.Mutex
	m  map[string]*Session

	stop chan struct{}
	once sync.Once
}

// Session is one live stream handle. All stream access goes through
// Push/Reset, which serialize on the session mutex.
type Session struct {
	ID    string
	Model string // registry name the stream was created from
	Omega int
	tel   *serverMetrics // nil in unit tests that build Sessions bare

	model cdt.Artifact // pinned incumbent (drift baseline source); may be nil in bare tests
	drift *drift       // nil disables drift tracking (bare tests)
	attr  *modelAttr   // nil disables per-rule attribution (bare tests)

	mu       sync.Mutex
	stream   cdt.StreamHandle
	lastUsed time.Time

	// Shadow mirroring: when a candidate was shadowing this model at
	// session-creation time, every pushed point also feeds a candidate
	// stream and per-push detections are compared. Sessions created
	// before a shadow starts do not mirror (the candidate would join
	// mid-stream with a cold cursor and disagree spuriously). The handle
	// is kind-generic: a pyramid candidate mirrors through its
	// PyramidStream just as a plain one does through its Stream.
	shadow       *Shadow
	shadowStream cdt.StreamHandle
}

// NewSessions starts a session manager; ttl <= 0 disables eviction. The
// janitor wakes at ttl/4 so an idle session lives at most ~1.25·ttl.
// tel (which may be nil) receives eviction counts and Push latencies.
func NewSessions(ttl time.Duration, tel *serverMetrics) *Sessions {
	s := &Sessions{ttl: ttl, tel: tel, m: make(map[string]*Session), stop: make(chan struct{})}
	if ttl > 0 {
		go s.janitor()
	}
	return s
}

func (s *Sessions) janitor() {
	tick := s.ttl / 4
	if tick <= 0 {
		tick = s.ttl
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-t.C:
			s.evictIdle(now)
		}
	}
}

// evictIdle removes sessions idle longer than the TTL.
func (s *Sessions) evictIdle(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, sess := range s.m {
		sess.mu.Lock()
		idle := now.Sub(sess.lastUsed)
		sess.mu.Unlock()
		if idle > s.ttl {
			delete(s.m, id)
			stats.Add("sessions_evicted", 1)
			stats.Add("active_sessions", -1)
			if s.tel != nil {
				s.tel.sessionsEvicted.Inc()
			}
		}
	}
}

// Close stops the eviction janitor. Live sessions are simply dropped.
func (s *Sessions) Close() {
	s.once.Do(func() { close(s.stop) })
}

// newSessionID returns a random 128-bit hex id.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade loudly.
		panic(fmt.Sprintf("server: session id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Create opens a stream on model (named name in the registry) and
// registers it. The session pins the model it was created with, so a
// registry reload — or a store promote, which is a reload — does not
// disturb live streams. shadow, drift, and attr may be nil (bare unit
// tests, or no candidate shadowing at creation time).
func (s *Sessions) Create(name string, model cdt.Artifact, scale cdt.Scale, shadow *Shadow, drift *drift, attr *modelAttr) (*Session, error) {
	stream, err := model.OpenStream(scale)
	if err != nil {
		return nil, err
	}
	var shadowStream cdt.StreamHandle
	if shadow != nil {
		shadowStream, err = shadow.candidate.OpenStream(scale)
		if err != nil {
			// The candidate cannot stream at this scale; serve without
			// mirroring rather than failing the session.
			shadow = nil
		}
	}
	sess := &Session{
		ID:           newSessionID(),
		Model:        name,
		Omega:        model.Info().Omega,
		tel:          s.tel,
		model:        model,
		drift:        drift,
		attr:         attr,
		stream:       stream,
		shadow:       shadow,
		shadowStream: shadowStream,
		lastUsed:     time.Now(),
	}
	s.mu.Lock()
	s.m[sess.ID] = sess
	s.mu.Unlock()
	stats.Add("active_sessions", 1)
	return sess, nil
}

// Get resolves a session by id.
func (s *Sessions) Get(id string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.m[id]
	return sess, ok
}

// Delete removes a session, reporting whether it existed.
func (s *Sessions) Delete(id string) bool {
	s.mu.Lock()
	_, ok := s.m[id]
	delete(s.m, id)
	s.mu.Unlock()
	if ok {
		stats.Add("active_sessions", -1)
	}
	return ok
}

// Len returns the number of live sessions.
func (s *Sessions) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Push feeds values through the session's stream in order and returns
// every detection they produced, tagged with the number of points the
// stream had consumed when the detection fired. When a candidate is
// mirroring the session, the same points feed its stream synchronously
// (the incremental cursor is O(1) per point) and the per-push detection
// ranges are compared into the shadow counters; the drift tracker sees
// every completed window either way. ctx carries the request's trace
// decision (a sampled request gets a session_push span, including any
// wait on the session mutex) and its request ID for drift log lines.
func (sess *Session) Push(ctx context.Context, values []float64) ([]cdt.Detection, int, bool) {
	start := time.Now()
	_, span := trace.StartSpan(ctx, "session_push")
	if span != nil {
		span.SetAttr("session", sess.ID)
		span.SetAttr("points", fmt.Sprintf("%d", len(values)))
		defer span.End()
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	pointsBefore := sess.stream.Points()
	var out []cdt.Detection
	for _, v := range values {
		out = append(out, sess.stream.Push(v)...)
	}
	windows := streamWindows(sess.stream.Points(), sess.Omega) -
		streamWindows(pointsBefore, sess.Omega)
	if sess.shadow != nil {
		var candDets []cdt.Detection
		for _, v := range values {
			candDets = append(candDets, sess.shadowStream.Push(v)...)
		}
		agree, incOnly, candOnly := compareRanges(detectionRanges(out), detectionRanges(candDets))
		sess.shadow.record(windows, agree, incOnly, candOnly)
	}
	var ruleCounts []uint64
	if sess.attr != nil && len(out) > 0 {
		ruleCounts = sess.attr.newCounts()
		for _, d := range out {
			sess.attr.tallyStream(ruleCounts, d)
		}
		sess.attr.apply(ruleCounts)
	}
	if sess.drift != nil {
		sess.drift.observe(ctx, sess.Model, sess.model, sess.attr, windows, len(out), ruleCounts)
	}
	sess.lastUsed = time.Now()
	if sess.tel != nil {
		// Includes any wait on the session mutex: an operator alerting on
		// push latency cares about time-to-result, not just scoring.
		sess.tel.pushLatency.Observe(time.Since(start).Seconds())
	}
	return out, sess.stream.Points(), sess.stream.Ready()
}

// streamWindows is the number of complete windows a stream of n points
// has swept: n−1 transition labels make n−ω windows.
func streamWindows(points, omega int) int {
	if w := points - omega; w > 0 {
		return w
	}
	return 0
}

// detectionRanges projects stream detections to their point ranges for
// the shadow comparison.
func detectionRanges(dets []cdt.Detection) [][2]int {
	if len(dets) == 0 {
		return nil
	}
	out := make([][2]int, len(dets))
	for i, d := range dets {
		out[i] = [2]int{d.WindowStart, d.WindowEnd}
	}
	return out
}

// Reset clears the stream state (and any mirrored candidate stream),
// keeping model and scale.
func (sess *Session) Reset() {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.stream.Reset()
	if sess.shadowStream != nil {
		sess.shadowStream.Reset()
	}
	sess.lastUsed = time.Now()
}
