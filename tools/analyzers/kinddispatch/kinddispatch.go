// Package kinddispatch enforces exhaustive dispatch over deployable
// artifact kinds. Since PR 7 the repo serves two artifact flavors
// (plain models and resolution pyramids, cdt.KindModel/KindPyramid,
// dispatched by LoadAny), and the standing footgun is a switch written
// for one kind silently falling through when handed the other — a
// pyramid riding a plain-model path loses its typing and scales without
// any error.
//
// Two dispatch shapes are checked:
//
//  1. String switches on a kind value. A switch is a kind switch when
//     any case references a registered kind constant — a package-level
//     string constant whose name contains "Kind" (KindModel,
//     KindPyramid, artifactKindPyramid). The registry is every such
//     constant in the referenced constant's package, deduplicated by
//     value; the switch must cover every registered value or carry an
//     explicit default.
//  2. Type switches on an interface named Artifact. The implementation
//     set is discovered from the program, not hardcoded: every named
//     type in the interface's defining package and in the analyzed
//     package whose value or pointer implements the interface. The
//     switch must name them all or carry an explicit default.
//
// Both rules accept `default:` as the escape hatch because the repo's
// convention is an explicit "unknown kind" error — the analyzer's job
// is to make silence impossible, not to force case-per-kind style.
package kinddispatch

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"cdt/tools/analysis"
)

// Analyzer is the kinddispatch check.
var Analyzer = &analysis.Analyzer{
	Name: "kinddispatch",
	Doc:  "requires switches on artifact kinds (string or type switches) to handle every registered kind or declare a default",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				checkKindSwitch(pass, n)
			case *ast.TypeSwitchStmt:
				checkArtifactTypeSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

// isKindConst matches the naming convention of artifact-kind constants.
func isKindConst(c *types.Const) bool {
	if c.Pkg() == nil {
		return false
	}
	b, ok := c.Type().Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsString == 0 {
		return false
	}
	return strings.Contains(c.Name(), "Kind") || strings.HasPrefix(c.Name(), "kind")
}

// checkKindSwitch applies rule 1: find a referenced kind constant, then
// demand value coverage of its package's kind registry or a default.
func checkKindSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	var anchor *types.Const
	covered := map[string]bool{}
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				continue
			}
			covered[constant.StringVal(tv.Value)] = true
			if anchor == nil {
				if c := referencedConst(pass, e); c != nil && isKindConst(c) {
					anchor = c
				}
			}
		}
	}
	if anchor == nil || hasDefault {
		return
	}
	var missing []string
	seen := map[string]bool{}
	scope := anchor.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !isKindConst(c) {
			continue
		}
		v := constant.StringVal(c.Val())
		if seen[v] {
			continue
		}
		seen[v] = true
		if !covered[v] {
			missing = append(missing, v)
		}
	}
	sort.Strings(missing)
	for _, v := range missing {
		pass.Reportf(sw.Switch,
			"switch on artifact kind does not handle registered kind %q and has no default (a new kind would fall through silently)", v)
	}
}

// referencedConst resolves a case expression to the constant object it
// names, unwrapping a package qualifier.
func referencedConst(pass *analysis.Pass, e ast.Expr) *types.Const {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		c, _ := pass.TypesInfo.Uses[e].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := pass.TypesInfo.Uses[e.Sel].(*types.Const)
		return c
	}
	return nil
}

// checkArtifactTypeSwitch applies rule 2.
func checkArtifactTypeSwitch(pass *analysis.Pass, sw *ast.TypeSwitchStmt) {
	named := switchedInterface(pass, sw)
	if named == nil || named.Obj().Name() != "Artifact" {
		return
	}
	impls := implementations(pass, named)
	if len(impls) == 0 {
		return
	}
	hasDefault := false
	covered := map[*types.TypeName]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok {
				continue
			}
			t := tv.Type
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				covered[named.Obj()] = true
			}
		}
	}
	if hasDefault {
		return
	}
	var missing []string
	for _, impl := range impls {
		if !covered[impl] {
			missing = append(missing, impl.Pkg().Name()+"."+impl.Name())
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		pass.Reportf(sw.Switch,
			"type switch on Artifact does not handle implementation %s and has no default (a new artifact kind would fall through silently)", name)
	}
}

// switchedInterface returns the named interface type of the type
// switch's subject, or nil.
func switchedInterface(pass *analysis.Pass, sw *ast.TypeSwitchStmt) *types.Named {
	var x ast.Expr
	switch s := sw.Assign.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return nil
		}
		ta, ok := s.Rhs[0].(*ast.TypeAssertExpr)
		if !ok {
			return nil
		}
		x = ta.X
	case *ast.ExprStmt:
		ta, ok := s.X.(*ast.TypeAssertExpr)
		if !ok {
			return nil
		}
		x = ta.X
	default:
		return nil
	}
	tv, ok := pass.TypesInfo.Types[x]
	if !ok {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || !types.IsInterface(named) {
		return nil
	}
	return named
}

// implementations discovers the registered artifact types: named
// non-interface types in the interface's defining package and the
// analyzed package whose value or pointer satisfies the interface.
func implementations(pass *analysis.Pass, ifaceNamed *types.Named) []*types.TypeName {
	iface, ok := ifaceNamed.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.TypeName
	seen := map[*types.TypeName]bool{}
	scan := func(scope *types.Scope) {
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() || seen[tn] {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
				seen[tn] = true
				out = append(out, tn)
			}
		}
	}
	// The interface's own package first (cdt declares Model and
	// PyramidModel beside Artifact), then the package under analysis
	// (which may add local implementations).
	if p := ifaceNamed.Obj().Pkg(); p != nil {
		scan(p.Scope())
	}
	if ifaceNamed.Obj().Pkg() != pass.Pkg {
		scan(pass.Pkg.Scope())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
