package core

import (
	"iter"

	"cdt/internal/pattern"
)

// Interner maps pattern labels to dense ids through a flat lookup table
// over the bounding box of the interned labels (a handful of small
// integers each way). Labels outside the box — or inside it but never
// interned — get id -1: they can never extend a match. Dense ids are
// what let the candidate trie, the Aho–Corasick automaton of
// internal/engine, and the subsequence NFA index flat transition tables
// instead of hashing labels.
type Interner struct {
	minVar, minAlpha, minBeta int
	nv, na, nb                int
	table                     []int32
	n                         int32
}

// NewInterner builds an interner over every label yielded by seqs. Ids
// are assigned in yield order, so the result is deterministic for a
// deterministic sequence. seqs is iterated twice (bounds, then id
// assignment) and therefore must be re-iterable.
func NewInterner(seqs iter.Seq[[]pattern.Label]) *Interner {
	in := &Interner{}
	first := true
	maxVar, maxAlpha, maxBeta := 0, 0, 0
	for labels := range seqs {
		for _, l := range labels {
			v, a, b := int(l.Var), int(l.Alpha), int(l.Beta)
			if first {
				in.minVar, maxVar = v, v
				in.minAlpha, maxAlpha = a, a
				in.minBeta, maxBeta = b, b
				first = false
				continue
			}
			in.minVar, maxVar = min(in.minVar, v), max(maxVar, v)
			in.minAlpha, maxAlpha = min(in.minAlpha, a), max(maxAlpha, a)
			in.minBeta, maxBeta = min(in.minBeta, b), max(maxBeta, b)
		}
	}
	if first {
		// No labels at all: nv/na/nb stay 0 and every ID lookup misses.
		return in
	}
	in.nv = maxVar - in.minVar + 1
	in.na = maxAlpha - in.minAlpha + 1
	in.nb = maxBeta - in.minBeta + 1
	in.table = make([]int32, in.nv*in.na*in.nb)
	for i := range in.table {
		in.table[i] = -1
	}
	for labels := range seqs {
		for _, l := range labels {
			if slot := in.slot(l); in.table[slot] < 0 {
				in.table[slot] = in.n
				in.n++
			}
		}
	}
	return in
}

// N returns the number of distinct interned labels.
func (in *Interner) N() int { return int(in.n) }

func (in *Interner) slot(l pattern.Label) int {
	return ((int(l.Var)-in.minVar)*in.na+int(l.Alpha)-in.minAlpha)*in.nb + int(l.Beta) - in.minBeta
}

// ID returns the dense id of l, or -1 when l was never interned. It sits
// on the per-label hot path of every automaton step, so the bounding-box
// test folds each signed pair of bounds checks into one unsigned compare
// (a negative offset wraps above any in-range extent).
func (in *Interner) ID(l pattern.Label) int32 {
	v := uint64(int(l.Var) - in.minVar)
	a := uint64(int(l.Alpha) - in.minAlpha)
	b := uint64(int(l.Beta) - in.minBeta)
	if v >= uint64(in.nv) || a >= uint64(in.na) || b >= uint64(in.nb) {
		return -1
	}
	return in.table[(v*uint64(in.na)+a)*uint64(in.nb)+b]
}
