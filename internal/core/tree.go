package core

import (
	"fmt"
	"iter"
	"runtime"
	"strings"
	"sync"

	"cdt/internal/pattern"
)

// Options configures CDT induction. The zero value is usable and matches
// the paper's setup (contiguous matching, Gini, no depth or length caps).
type Options struct {
	// Criterion is the impurity used to score splits (default Gini).
	Criterion SplitCriterion
	// Match selects the ⊆o semantics (default contiguous).
	Match MatchMode
	// MaxCompositionLen caps candidate composition length; 0 means
	// unlimited (up to ω). Short caps trade accuracy for speed and rule
	// brevity (ablated in the benchmarks).
	MaxCompositionLen int
	// MaxDepth caps tree depth; 0 means unlimited. Algorithm 1 has no
	// cap: it stops only on purity or zero gain.
	MaxDepth int
	// MinGain is the minimum information gain required to split; the
	// paper requires strictly positive gain (maxGain ≠ 0), which the
	// zero value reproduces.
	MinGain float64
	// Parallelism bounds the goroutines scoring candidate compositions;
	// 0 means GOMAXPROCS.
	Parallelism int
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Node is one CDT node: the quadruplet of Algorithm 1 (observations are
// summarized by their class counts rather than retained) plus bookkeeping
// for rule extraction and rendering.
type Node struct {
	// Composition splits this node; nil for leaves.
	Composition *Composition
	// ChildTrue holds observations matched by Composition (c ∈o d),
	// ChildFalse the rest. Both nil for leaves.
	ChildTrue, ChildFalse *Node
	// Counts is the class distribution of the node's observations.
	Counts ClassCounts
	// Depth is the node's distance from the root.
	Depth int
}

// Leaf reports whether the node has no split.
func (n *Node) Leaf() bool { return n.Composition == nil }

// Class returns the node's majority class (ties break to Anomaly).
func (n *Node) Class() Class { return n.Counts.Majority() }

// Pure reports whether all of the node's observations share one class.
func (n *Node) Pure() bool { return n.Counts.Pure() }

// Tree is a trained Composition-based Decision Tree.
type Tree struct {
	// Root is the tree root; never nil after Build succeeds.
	Root *Node
	// Omega is the window size the tree was trained with.
	Omega int
	// Opts are the induction options used.
	Opts Options
}

// Build induces a CDT from training observations (Algorithm 1). All
// observations must share the same window length, which becomes the
// tree's ω.
func Build(obs []Observation, opts Options) (*Tree, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("core: no observations")
	}
	omega := len(obs[0].Labels)
	for i := range obs {
		if len(obs[i].Labels) != omega {
			return nil, fmt.Errorf("core: observation %d has %d labels, want %d", i, len(obs[i].Labels), omega)
		}
	}
	t := &Tree{Omega: omega, Opts: opts}
	t.Root = &Node{Counts: Count(obs)}
	// The whole induction works over one private copy of the observation
	// pool (the input — often a shared Corpus cache entry — is never
	// mutated). Each node owns a contiguous range of work; splitting
	// stably partitions the range in place via one scratch buffer, so
	// tree growth allocates no per-node observation slices.
	work := make([]Observation, len(obs))
	copy(work, obs)
	scratch := make([]Observation, len(obs))
	marks := make([]bool, len(obs))
	// Algorithm 1 processes a FIFO queue of (node, range) pairs.
	type item struct {
		node   *Node
		lo, hi int
	}
	queue := []item{{t.Root, 0, len(obs)}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		node, data := it.node, work[it.lo:it.hi]
		if node.Pure() {
			continue
		}
		if opts.MaxDepth > 0 && node.Depth >= opts.MaxDepth {
			continue
		}
		best, gain, inCounts := bestComposition(data, opts)
		if best == nil || gain <= opts.MinGain {
			continue
		}
		// The split scoring already counted the in-side, so the child
		// class counts are known without re-scanning.
		outCounts := ClassCounts{
			Normal:  node.Counts.Normal - inCounts.Normal,
			Anomaly: node.Counts.Anomaly - inCounts.Anomaly,
		}
		nIn := inCounts.Normal + inCounts.Anomaly
		m := marks[it.lo:it.hi]
		clear(m)
		markMatches(data, best, opts.Match, m)
		dst := scratch[it.lo:it.hi]
		i, o := 0, nIn
		for idx := range data {
			if m[idx] {
				dst[i] = data[idx]
				i++
			} else {
				dst[o] = data[idx]
				o++
			}
		}
		copy(data, dst)
		node.Composition = best
		node.ChildTrue = &Node{Counts: inCounts, Depth: node.Depth + 1}
		node.ChildFalse = &Node{Counts: outCounts, Depth: node.Depth + 1}
		queue = append(queue, item{node.ChildTrue, it.lo, it.lo + nIn}, item{node.ChildFalse, it.lo + nIn, it.hi})
	}
	return t, nil
}

// markMatches sets marks[j] for every observation obs[j] the composition
// matches. For contiguous matching, maximal sliding runs are scanned in
// series space like countSlidingRun — each occurrence found once and
// credited to its containing window range — instead of re-searching every
// ω-window; isolated windows and subsequence mode fall back to MatchedBy.
func markMatches(obs []Observation, comp *Composition, mode MatchMode, marks []bool) {
	if mode != MatchContiguous {
		for j := range obs {
			marks[j] = comp.MatchedBy(obs[j].Labels, mode)
		}
		return
	}
	pat := comp.Labels
	for lo := 0; lo < len(obs); {
		hi := lo + 1
		for hi < len(obs) && SlidingAdjacent(obs[hi-1].Labels, obs[hi].Labels) {
			hi++
		}
		if hi-lo == 1 {
			marks[lo] = comp.MatchedBy(obs[lo].Labels, mode)
			lo = hi
			continue
		}
		markSlidingRun(obs[lo:hi], pat, marks[lo:hi])
		lo = hi
	}
}

// markSlidingRun marks the windows of one maximal sliding run containing
// an occurrence of pat. The run's windows cover a label sequence of
// length numWin+ω-1 whose position i lives in run[0] for i < ω and as the
// last label of run[i-ω+1] otherwise; an occurrence at position p spans
// windows [p+len(pat)-ω, p], and a last-marked cursor keeps the total
// marking work linear even when occurrences overlap densely.
func markSlidingRun(run []Observation, pat []pattern.Label, marks []bool) {
	omega := len(run[0].Labels)
	numWin := len(run)
	if len(pat) == 0 {
		for j := range marks {
			marks[j] = true
		}
		return
	}
	if len(pat) > omega {
		return
	}
	seqLen := numWin + omega - 1
	last := -1
	for p := 0; p+len(pat) <= seqLen; p++ {
		hit := true
		for k := range pat {
			i := p + k
			var l pattern.Label
			if i < omega {
				l = run[0].Labels[i]
			} else {
				l = run[i-omega+1].Labels[omega-1]
			}
			if l != pat[k] {
				hit = false
				break
			}
		}
		if !hit {
			continue
		}
		winLo := max(p+len(pat)-omega, 0)
		winHi := min(p, numWin-1)
		if winLo <= last {
			winLo = last + 1
		}
		for j := winLo; j <= winHi; j++ {
			marks[j] = true
		}
		if winHi > last {
			last = winHi
		}
	}
}

// bestComposition scores every candidate composition (all distinct
// contiguous subsequences of the anomalous observations, Algorithm 1
// lines 6-15) and returns the one with the highest information gain.
// Ties resolve to the earliest candidate in the deterministic enumeration
// order (shortest first), mirroring the strict ">" of line 11.
//
// For the default contiguous ⊆o, candidate supports are counted in one
// pass that enumerates each observation's distinct substrings and looks
// them up in the candidate index — O(Σ windows · ω · maxLen) instead of
// O(candidates · windows · ω · maxLen). Subsequence matching runs each
// candidate chunk through one SubseqNFA pass (countSubsequenceSupports).
func bestComposition(obs []Observation, opts Options) (*Composition, float64, ClassCounts) {
	candidates := enumerateCompositions(obs, opts.MaxCompositionLen)
	if len(candidates) == 0 {
		return nil, 0, ClassCounts{}
	}
	parent := Count(obs)
	var counts []ClassCounts
	if opts.Match == MatchContiguous {
		counts = countContiguousSupports(obs, candidates, opts)
	} else {
		counts = countSubsequenceSupports(obs, candidates, opts)
	}
	bestIdx, bestGain := -1, 0.0
	for i, in := range counts {
		out := ClassCounts{Normal: parent.Normal - in.Normal, Anomaly: parent.Anomaly - in.Anomaly}
		if g := opts.Criterion.InformationGain(parent, in, out); g > bestGain {
			bestGain = g
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return nil, 0, ClassCounts{}
	}
	c := candidates[bestIdx]
	return &c, bestGain, counts[bestIdx]
}

// compositionLabels adapts a candidate slice to the label-sequence view
// NewInterner consumes, without materializing a [][]pattern.Label.
func compositionLabels(candidates []Composition) iter.Seq[[]pattern.Label] {
	return func(yield func([]pattern.Label) bool) {
		for i := range candidates {
			if !yield(candidates[i].Labels) {
				return
			}
		}
	}
}

// candidateTrie indexes candidate compositions for contiguous matching:
// a flat node×labelID transition table over dense label ids (node 0 is
// the root), with term[node] naming the candidate ending at that node
// (-1 if none).
type candidateTrie struct {
	in       *Interner
	width    int
	children []int32
	term     []int32
	maxLen   int
}

func newCandidateTrie(candidates []Composition) *candidateTrie {
	in := NewInterner(compositionLabels(candidates))
	t := &candidateTrie{in: in, width: in.N()}
	t.children = make([]int32, t.width)
	for i := range t.children {
		t.children[i] = -1
	}
	t.term = []int32{-1}
	for ci, c := range candidates {
		node := int32(0)
		for _, l := range c.Labels {
			id := in.ID(l)
			next := t.children[int(node)*t.width+int(id)]
			if next < 0 {
				next = int32(len(t.term))
				t.children[int(node)*t.width+int(id)] = next
				for i := 0; i < t.width; i++ {
					t.children = append(t.children, -1)
				}
				t.term = append(t.term, -1)
			}
			node = next
		}
		t.term[node] = int32(ci)
		if c.Len() > t.maxLen {
			t.maxLen = c.Len()
		}
	}
	return t
}

// countContiguousSupports returns, per candidate, the class counts of the
// observations containing it as a substring. Candidates live in a flat
// trie over dense label ids, so the inner loops are pure array walking.
// This is the training hot path — it runs once per tree node per fit,
// over every pooled window.
//
// Observations that are consecutive sliding windows over one backing
// label array (the shape the Corpus pooling produces at the root node)
// take a series-space fast path: each substring occurrence is discovered
// once in the underlying sequence and credited to the whole range of
// windows containing it, O(positions · maxLen) instead of
// O(windows · ω · maxLen). Partitioned child nodes, whose observations
// are no longer adjacent, fall back to the per-window scan. Both paths
// count each (candidate, window) pair at most once.
func countContiguousSupports(obs []Observation, candidates []Composition, opts Options) []ClassCounts {
	counts := make([]ClassCounts, len(candidates))
	if len(candidates) == 0 {
		return counts
	}
	trie := newCandidateTrie(candidates)

	// coveredUntil[c] is the last window index (run-local, offset by one)
	// already credited to candidate c within the current sliding run;
	// runStamp invalidates it lazily between runs.
	coveredUntil := make([]int64, len(candidates))
	var runStamp int64
	var ids []int32
	var anomPrefix []int32

	for lo := 0; lo < len(obs); {
		hi := lo + 1
		for hi < len(obs) && SlidingAdjacent(obs[hi-1].Labels, obs[hi].Labels) {
			hi++
		}
		if hi-lo > 1 {
			ids, anomPrefix = trie.countSlidingRun(obs[lo:hi], counts, coveredUntil, runStamp, ids, anomPrefix)
			runStamp += int64(hi-lo) + 1
		} else {
			ids = trie.countWindow(obs[lo], counts, coveredUntil, runStamp, ids)
			runStamp++
		}
		lo = hi
	}
	return counts
}

// SlidingAdjacent reports whether b is a's window slid one position
// right over the same backing array — the shape Corpus window pooling
// produces. Exported so internal/engine can walk pooled observation
// sets run by run.
func SlidingAdjacent(a, b []pattern.Label) bool {
	return len(a) == len(b) && len(a) > 1 && &a[1] == &b[0]
}

// countSlidingRun counts supports over a maximal run of consecutive
// sliding windows. The run spans the label sequence seq of length
// numWindows+ω-1; window j is seq[j : j+ω]. A candidate occurrence at
// seq position p with length l is contained in windows
// j ∈ [p+l-ω, p] ∩ [0, numWindows-1]; per candidate, those ranges arrive
// with non-decreasing endpoints, so a covered-until cursor unions them,
// and a prefix sum over window classes converts each fresh range to
// class counts in O(1).
func (t *candidateTrie) countSlidingRun(run []Observation, counts []ClassCounts, coveredUntil []int64, runStamp int64, ids []int32, anomPrefix []int32) ([]int32, []int32) {
	omega := len(run[0].Labels)
	numWin := len(run)

	anomPrefix = anomPrefix[:0]
	anomPrefix = append(anomPrefix, 0)
	for j := 0; j < numWin; j++ {
		a := anomPrefix[j]
		if run[j].Class == Anomaly {
			a++
		}
		anomPrefix = append(anomPrefix, a)
	}

	ids = ids[:0]
	first := run[0].Labels
	for _, l := range first {
		ids = append(ids, t.in.ID(l))
	}
	for j := 1; j < numWin; j++ {
		ids = append(ids, t.in.ID(run[j].Labels[omega-1]))
	}

	for p := 0; p < len(ids); p++ {
		node := int32(0)
		for k := p; k < len(ids) && k-p < t.maxLen; k++ {
			id := ids[k]
			if id < 0 {
				break
			}
			node = t.children[int(node)*t.width+int(id)]
			if node < 0 {
				break
			}
			ci := t.term[node]
			if ci < 0 {
				continue
			}
			l := k - p + 1
			winLo := p + l - omega
			if winLo < 0 {
				winLo = 0
			}
			winHi := p
			if winHi > numWin-1 {
				winHi = numWin - 1
			}
			if winLo > winHi {
				continue
			}
			// Union with the windows already credited in this run.
			if seen := coveredUntil[ci] - runStamp - 1; seen >= int64(winLo) {
				winLo = int(seen) + 1
			}
			if winLo > winHi {
				continue
			}
			coveredUntil[ci] = runStamp + 1 + int64(winHi)
			anom := int(anomPrefix[winHi+1] - anomPrefix[winLo])
			counts[ci].Anomaly += anom
			counts[ci].Normal += winHi - winLo + 1 - anom
		}
	}
	return ids, anomPrefix
}

// countWindow counts supports within one isolated observation.
func (t *candidateTrie) countWindow(o Observation, counts []ClassCounts, coveredUntil []int64, runStamp int64, ids []int32) []int32 {
	ids = ids[:0]
	for _, l := range o.Labels {
		ids = append(ids, t.in.ID(l))
	}
	anom := o.Class == Anomaly
	for p := 0; p < len(ids); p++ {
		node := int32(0)
		for k := p; k < len(ids) && k-p < t.maxLen; k++ {
			id := ids[k]
			if id < 0 {
				break
			}
			node = t.children[int(node)*t.width+int(id)]
			if node < 0 {
				break
			}
			ci := t.term[node]
			if ci < 0 || coveredUntil[ci] > runStamp {
				continue
			}
			coveredUntil[ci] = runStamp + 1
			if anom {
				counts[ci].Anomaly++
			} else {
				counts[ci].Normal++
			}
		}
	}
	return ids
}

// countSupportsNaive scores candidates by direct matching, parallelized
// across candidates (used for the gapped-subsequence ablation mode).
func countSupportsNaive(obs []Observation, candidates []Composition, opts Options) []ClassCounts {
	counts := make([]ClassCounts, len(candidates))
	workers := opts.parallelism()
	if workers > len(candidates) {
		workers = len(candidates)
	}
	var wg sync.WaitGroup
	chunk := (len(candidates) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(candidates) {
			hi = len(candidates)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for ci := lo; ci < hi; ci++ {
				for i := range obs {
					if candidates[ci].MatchedBy(obs[i].Labels, opts.Match) {
						if obs[i].Class == Anomaly {
							counts[ci].Anomaly++
						} else {
							counts[ci].Normal++
						}
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return counts
}

// Predict classifies one window of labels by routing it through the tree.
func (t *Tree) Predict(labels []pattern.Label) Class {
	n := t.Root
	for !n.Leaf() {
		if n.Composition.MatchedBy(labels, t.Opts.Match) {
			n = n.ChildTrue
		} else {
			n = n.ChildFalse
		}
	}
	return n.Class()
}

// PredictAll classifies a batch of observations, returning one class per
// observation.
func (t *Tree) PredictAll(obs []Observation) []Class {
	out := make([]Class, len(obs))
	for i := range obs {
		out[i] = t.Predict(obs[i].Labels)
	}
	return out
}

// Stats summarizes tree shape for reporting (Figure 2 discusses splits
// and leaves).
type Stats struct {
	Nodes, Leaves, Splits, MaxDepth int
	AnomalyLeaves                   int
	PureAnomalyLeaves               int
}

// Stats walks the tree and tallies its shape.
func (t *Tree) Stats() Stats {
	var st Stats
	var walk func(n *Node)
	walk = func(n *Node) {
		st.Nodes++
		if n.Depth > st.MaxDepth {
			st.MaxDepth = n.Depth
		}
		if n.Leaf() {
			st.Leaves++
			if n.Class() == Anomaly {
				st.AnomalyLeaves++
				if n.Pure() {
					st.PureAnomalyLeaves++
				}
			}
			return
		}
		st.Splits++
		walk(n.ChildTrue)
		walk(n.ChildFalse)
	}
	walk(t.Root)
	return st
}

// Render draws the tree as indented text (used for the Figure 2
// illustration), naming compositions with the configuration's interval
// names.
func (t *Tree) Render(cfg pattern.Config) string {
	var b strings.Builder
	var walk func(n *Node, prefix string, branch string)
	walk = func(n *Node, prefix, branch string) {
		b.WriteString(prefix)
		b.WriteString(branch)
		if n.Leaf() {
			fmt.Fprintf(&b, "leaf %s (normal=%d anomaly=%d)\n", n.Class(), n.Counts.Normal, n.Counts.Anomaly)
			return
		}
		fmt.Fprintf(&b, "split on %s (normal=%d anomaly=%d)\n", n.Composition.Format(cfg), n.Counts.Normal, n.Counts.Anomaly)
		walk(n.ChildTrue, prefix+"  ", "∈o → ")
		walk(n.ChildFalse, prefix+"  ", "∉o → ")
	}
	walk(t.Root, "", "")
	return b.String()
}

// DOT renders the tree as Graphviz source (an alternative to Render for
// publication-quality Figure 2 diagrams). Split nodes show their
// composition, leaves their class and counts; true branches are labeled
// "∈o", false branches "∉o".
func (t *Tree) DOT(cfg pattern.Config) string {
	var b strings.Builder
	b.WriteString("digraph cdt {\n  node [fontname=\"Helvetica\"];\n")
	id := 0
	var walk func(n *Node) int
	walk = func(n *Node) int {
		me := id
		id++
		if n.Leaf() {
			shape := "ellipse"
			fill := "white"
			if n.Class() == Anomaly {
				fill = "lightcoral"
			} else {
				fill = "lightgreen"
			}
			fmt.Fprintf(&b, "  n%d [shape=%s, style=filled, fillcolor=%s, label=\"%s\\nnormal=%d anomaly=%d\"];\n",
				me, shape, fill, n.Class(), n.Counts.Normal, n.Counts.Anomaly)
			return me
		}
		fmt.Fprintf(&b, "  n%d [shape=box, label=%q];\n", me, n.Composition.Format(cfg))
		tc := walk(n.ChildTrue)
		fc := walk(n.ChildFalse)
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"∈o\"];\n", me, tc)
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"∉o\"];\n", me, fc)
		return me
	}
	walk(t.Root)
	b.WriteString("}\n")
	return b.String()
}
