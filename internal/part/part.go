// Package part implements the PART rule learner (Frank & Witten 1998;
// §4.3's WEKA PART): a separate-and-conquer loop that repeatedly builds a
// C4.5 tree over the remaining instances, turns the leaf covering the
// most instances into a rule, removes the covered instances, and repeats
// until no instances remain. The resulting ordered rule list ends with a
// default class.
//
// The original builds *partial* trees purely as an efficiency device —
// only the branch that will yield the extracted rule is developed.
// Both constructions are available (Options.Partial); the default full
// pruned tree is the straightforward reference variant.
package part

import (
	"fmt"

	"cdt/internal/c45"
)

// Rule is one ordered rule: a conjunction of attribute tests implying a
// class.
type Rule struct {
	Conditions []c45.Condition
	Class      int
	// Coverage is the number of training instances the rule covered when
	// it was created.
	Coverage int
}

// Matches reports whether the rule's conjunction holds for attrs.
func (r Rule) Matches(attrs []int) bool {
	for _, c := range r.Conditions {
		if attrs[c.Attr] != c.Value {
			return false
		}
	}
	return true
}

// Classifier is an ordered PART rule list with a default class.
type Classifier struct {
	Rules        []Rule
	DefaultClass int
}

// Options configures learning; the embedded tree options mirror WEKA's
// PART defaults (M=2, C=0.25).
type Options struct {
	Tree c45.Options
	// MaxRules caps the rule list as a safety valve (0 = unlimited).
	MaxRules int
	// Partial uses Frank & Witten's partial-tree construction per
	// iteration (the original algorithm's efficiency device) instead of
	// a full pruned tree. Both yield a best-coverage leaf rule; partial
	// trees expand only the branch that produces it.
	Partial bool
}

// Learn runs the separate-and-conquer loop over the dataset.
func Learn(ds *c45.Dataset, opts Options) (*Classifier, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if len(ds.Instances) == 0 {
		return nil, fmt.Errorf("part: no instances")
	}
	remaining := make([]int, len(ds.Instances))
	for i := range remaining {
		remaining[i] = i
	}
	cls := &Classifier{}
	for len(remaining) > 0 {
		if opts.MaxRules > 0 && len(cls.Rules) >= opts.MaxRules {
			break
		}
		var tree *c45.Tree
		var err error
		if opts.Partial {
			tree, err = c45.BuildPartial(ds, remaining, opts.Tree)
		} else {
			tree, err = c45.Build(ds, remaining, opts.Tree)
		}
		if err != nil {
			return nil, err
		}
		leaves := tree.Leaves()
		// Pick the developed leaf covering the most remaining instances
		// (unexpanded partial-tree placeholders are not extractable —
		// their subsets were never examined).
		best := -1
		for i, l := range leaves {
			if l.Node.Unexpanded {
				continue
			}
			if best < 0 || l.Node.Total() > leaves[best].Node.Total() {
				best = i
			}
		}
		if best < 0 || leaves[best].Node.Total() == 0 {
			break
		}
		leaf := leaves[best]
		rule := Rule{
			Conditions: leaf.Conditions,
			Class:      leaf.Node.MajorityClass,
			Coverage:   leaf.Node.Total(),
		}
		cls.Rules = append(cls.Rules, rule)
		// Remove covered instances.
		var next []int
		for _, i := range remaining {
			if !rule.Matches(ds.Instances[i].Attrs) {
				next = append(next, i)
			}
		}
		if len(next) == len(remaining) {
			// The rule covered nothing (inconsistent tree) — stop rather
			// than loop forever.
			break
		}
		remaining = next
	}
	// Default class: majority of still-uncovered instances, or of the
	// whole dataset when everything is covered.
	counts := make([]int, ds.NumClasses)
	pool := remaining
	if len(pool) == 0 {
		pool = make([]int, len(ds.Instances))
		for i := range pool {
			pool[i] = i
		}
	}
	for _, i := range pool {
		counts[ds.Instances[i].Class]++
	}
	cls.DefaultClass = argmax(counts)
	return cls, nil
}

// Predict classifies by the first matching rule, falling back to the
// default class.
func (c *Classifier) Predict(attrs []int) int {
	for _, r := range c.Rules {
		if r.Matches(attrs) {
			return r.Class
		}
	}
	return c.DefaultClass
}

// NumRules returns the size of the rule list (the Figure 3 metric).
func (c *Classifier) NumRules() int { return len(c.Rules) }

func argmax(counts []int) int {
	best := 0
	for i, v := range counts {
		if v > counts[best] {
			best = i
		}
	}
	return best
}
