package datasets

import (
	"bytes"
	"strings"
	"testing"

	"cdt/internal/timeseries"
)

func TestCSVRoundTrip(t *testing.T) {
	s := timeseries.NewLabeled("s", []float64{1.5, -2, 3.25}, []bool{false, true, false})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "s")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("len = %d", got.Len())
	}
	for i := range s.Values {
		if got.Values[i] != s.Values[i] || got.Anomalies[i] != s.Anomalies[i] {
			t.Errorf("row %d: got (%v,%v), want (%v,%v)", i, got.Values[i], got.Anomalies[i], s.Values[i], s.Anomalies[i])
		}
	}
}

func TestReadCSVWithoutAnomalyColumn(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("value\n1\n2\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if got.Labeled() {
		t.Error("series without anomaly column should be unlabeled")
	}
	if got.Len() != 2 {
		t.Errorf("len = %d", got.Len())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "x"); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("value\nnot-a-number\n"), "x"); err == nil {
		t.Error("junk value accepted")
	}
	if _, err := ReadCSV(strings.NewReader("value,is_anomaly\n1,x\n"), "x"); err == nil {
		t.Error("junk anomaly flag accepted")
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("value,is_anomaly\n1,0\n\n2,1\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || !got.Anomalies[1] {
		t.Errorf("got %+v", got)
	}
}

func TestDatasetTotals(t *testing.T) {
	d := &Dataset{Name: "d", Series: []*timeseries.Series{
		timeseries.NewLabeled("a", []float64{1, 2, 3}, []bool{true, false, false}),
		timeseries.NewLabeled("b", []float64{4, 5}, []bool{true, true}),
	}}
	if d.TotalPoints() != 5 {
		t.Errorf("points = %d", d.TotalPoints())
	}
	if d.TotalAnomalies() != 3 {
		t.Errorf("anomalies = %d", d.TotalAnomalies())
	}
	if d.AnomalyRate() != 0.6 {
		t.Errorf("rate = %v", d.AnomalyRate())
	}
	empty := &Dataset{}
	if empty.AnomalyRate() != 0 {
		t.Error("empty rate should be 0")
	}
}

func TestDatasetDownsample(t *testing.T) {
	d := &Dataset{Name: "d", Series: []*timeseries.Series{
		timeseries.NewLabeled("a", []float64{1, 3, 5, 7}, []bool{false, true, false, false}),
	}}
	out, err := d.Downsample(2, timeseries.Mean)
	if err != nil {
		t.Fatal(err)
	}
	if out.Series[0].Len() != 2 || out.Series[0].Values[0] != 2 {
		t.Errorf("downsampled = %+v", out.Series[0])
	}
	if !out.Series[0].Anomalies[0] {
		t.Error("anomaly lost in downsampling")
	}
	if _, err := d.Downsample(0, timeseries.Mean); err == nil {
		t.Error("factor 0 accepted")
	}
}

func TestDatasetNormalize(t *testing.T) {
	d := &Dataset{Name: "d", Series: []*timeseries.Series{
		timeseries.New("a", []float64{0, 5, 10}),
	}}
	if _, err := d.Normalize(); err != nil {
		t.Fatal(err)
	}
	if d.Series[0].Values[1] != 0.5 {
		t.Errorf("normalize = %v", d.Series[0].Values)
	}
	bad := &Dataset{Series: []*timeseries.Series{timeseries.New("e", nil)}}
	if _, err := bad.Normalize(); err == nil {
		t.Error("empty series accepted")
	}
}
