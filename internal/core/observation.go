// Package core implements the paper's primary contribution: the
// Composition-based Decision Tree (CDT, §3.3, Algorithm 1).
//
// The tree is induced over *observations* — fixed-size sliding windows of
// a labeled time-series (Definition 4) — and splits nodes on
// *compositions*: ordered subsequences of pattern labels (Definition 5)
// chosen to maximize information gain under the Gini impurity.
package core

import (
	"fmt"

	"cdt/internal/pattern"
)

// Class is the binary classification target of an observation.
type Class uint8

const (
	// Normal marks an observation without any anomalous point.
	Normal Class = iota
	// Anomaly marks an observation covering at least one anomalous point.
	Anomaly
)

// String returns "normal" or "anomaly".
func (c Class) String() string {
	if c == Anomaly {
		return "anomaly"
	}
	return "normal"
}

// Observation is one sliding window over a labeled series (Definition 4):
// ω consecutive pattern labels plus the window's class.
type Observation struct {
	// Labels are the ω pattern labels of the window.
	Labels []pattern.Label
	// Class is Anomaly if the window covers at least one annotated
	// anomalous point of the original series.
	Class Class
	// Start is the index of the window's first label in the labeled
	// series (label j corresponds to point j+1 of the raw series).
	Start int
}

// Windows cuts a labeled series into observations using a sliding window
// of size omega and step 1 (Definition 4). pointAnomalies are the anomaly
// flags of the *original* series (length = len(labels)+2); a window is
// Anomaly-classed when any original point it covers — points
// [start+1, start+omega] — is flagged. Pass nil pointAnomalies to build
// unlabeled observations (all Normal), e.g. for detection on new data.
func Windows(labels []pattern.Label, pointAnomalies []bool, omega int) ([]Observation, error) {
	if omega < 1 {
		return nil, fmt.Errorf("core: window size %d, want >= 1", omega)
	}
	if omega > len(labels) {
		return nil, fmt.Errorf("core: window size %d exceeds %d labels", omega, len(labels))
	}
	if pointAnomalies != nil && len(pointAnomalies) != len(labels)+2 {
		return nil, fmt.Errorf("core: %d anomaly flags for %d labels, want %d", len(pointAnomalies), len(labels), len(labels)+2)
	}
	out := make([]Observation, 0, len(labels)-omega+1)
	for start := 0; start+omega <= len(labels); start++ {
		obs := Observation{Labels: labels[start : start+omega], Start: start}
		if pointAnomalies != nil {
			// Label j covers original point j+1; the window covers
			// points start+1 .. start+omega.
			for p := start + 1; p <= start+omega; p++ {
				if pointAnomalies[p] {
					obs.Class = Anomaly
					break
				}
			}
		}
		out = append(out, obs)
	}
	return out, nil
}

// ClassCounts tallies observations per class.
type ClassCounts struct {
	Normal, Anomaly int
}

// Total returns the number of counted observations.
func (cc ClassCounts) Total() int { return cc.Normal + cc.Anomaly }

// Count tallies the classes of a set of observations.
func Count(obs []Observation) ClassCounts {
	var cc ClassCounts
	for i := range obs {
		if obs[i].Class == Anomaly {
			cc.Anomaly++
		} else {
			cc.Normal++
		}
	}
	return cc
}

// Majority returns the majority class of the counts, preferring Anomaly on
// ties (an undecidable leaf is more useful raising an alarm than staying
// silent).
func (cc ClassCounts) Majority() Class {
	if cc.Anomaly >= cc.Normal {
		if cc.Anomaly == 0 {
			return Normal
		}
		return Anomaly
	}
	return Normal
}

// Pure reports whether all observations share one class.
func (cc ClassCounts) Pure() bool { return cc.Normal == 0 || cc.Anomaly == 0 }
