// Package analysistest runs an analyzer over golden testdata packages and
// checks its diagnostics against `// want` comments, mirroring the
// x/tools package of the same name closely enough that the analyzer tests
// read identically.
//
// Testdata layout is the x/tools convention: testdata/src/<pkg>/*.go.
// Every line that should produce a diagnostic carries a comment of the
// form
//
//	code // want "regexp"
//	code // want "first" "second"
//
// where each quoted (or backquoted) string is a regular expression that
// must match the diagnostic message reported on that line. Diagnostics
// without a matching want, and wants without a matching diagnostic, fail
// the test. Testdata packages are type-checked from source and may import
// the real cdt module (resolved through the repository's go.work).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cdt/tools/analysis"
)

// Run applies the analyzer to each named package under dir/src and
// reports mismatches between its diagnostics and the // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	build.Default.CgoEnabled = false
	for _, pkg := range pkgs {
		runPackage(t, filepath.Join(dir, "src", pkg), pkg, a)
	}
}

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	abs, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return abs
}

// expectation is one // want regexp, consumed when a diagnostic matches.
type expectation struct {
	rx   *regexp.Regexp
	used bool
}

func runPackage(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no Go files in %s", a.Name, dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("%s: type-checking %s: %v", a.Name, dir, err)
	}

	wants, err := collectWants(fset, files)
	if err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	// Suppression directives apply in golden packages exactly as in a
	// real run: a suppressed diagnostic is dropped before want-matching,
	// so a testdata line carrying //cdtlint:ignore and no want comment
	// asserts that suppression works. Malformed directives fail the
	// test outright.
	sups, malformed := analysis.CollectSuppressions(fset, files)
	for _, m := range malformed {
		t.Errorf("%s: %s: %s", a.Name, m.Position, m.Message)
	}

	var diags []analysis.Finding
	unit := &analysis.Unit{ImportPath: pkgPath, Kind: analysis.Lib, Files: files, Pkg: pkg, Info: info}
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Prog:      analysis.NewProgram(fset, []*analysis.Unit{unit}),
		Report: func(d analysis.Diagnostic) {
			f := analysis.Finding{
				Analyzer: a.Name,
				Position: fset.Position(d.Pos),
				Message:  d.Message,
			}
			if _, ok := sups.Match(a.Name, f.Position); ok {
				return
			}
			diags = append(diags, f)
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: Run: %v", a.Name, err)
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Position.Filename, d.Position.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.rx.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, d.Position.Filename, d.Position.Line, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.used {
				t.Errorf("%s: no diagnostic at %s matching %q", a.Name, k, w.rx)
			}
		}
	}
}

// wantRx extracts the quoted regexps of one want comment.
var wantRx = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// collectWants maps "file:line" to the expectations declared there.
func collectWants(fset *token.FileSet, files []*ast.File) (map[string][]*expectation, error) {
	wants := make(map[string][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRx.FindAllString(strings.TrimPrefix(text, "want "), -1) {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want string %s: %v", pos, q, err)
						}
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}
	return wants, nil
}
