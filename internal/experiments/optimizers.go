package experiments

import (
	"fmt"
	"strings"

	cdt "cdt"
	"cdt/internal/bayesopt"
)

// OptimizerComparison contrasts Bayesian optimization with the grid and
// random search baselines §3.6 dismisses ("grid search is time consuming
// and random search might not find the optimal set"): same objective,
// same (reduced) search space, best validation F1 per evaluation budget.
type OptimizerComparison struct {
	Strategy    string
	BestScore   float64
	Evaluations int
}

// CompareOptimizers runs all three strategies on one dataset over a
// reduced ω×δ grid (so exhaustive search stays affordable) and returns
// their results. The Bayesian optimizer and random search get the same
// evaluation budget; grid search evaluates every cell.
func (s *Suite) CompareOptimizers(name string, budget int) ([]OptimizerComparison, error) {
	if budget <= 0 {
		budget = 15
	}
	p, err := s.Dataset(name)
	if err != nil {
		return nil, err
	}
	space := bayesopt.Space{
		{Name: "omega", Min: 3, Max: 15},
		{Name: "delta", Min: 1, Max: 6},
	}
	// All three strategies drive one corpus-backed objective, so the
	// comparison measures search strategy, not preprocessing overlap:
	// whichever strategy runs first warms the caches for the rest.
	trainCorpus, err := p.TrainCorpus()
	if err != nil {
		return nil, err
	}
	valCorpus, err := p.ValidationCorpus()
	if err != nil {
		return nil, err
	}
	objective := func(x []int) float64 {
		opts := cdt.Options{Omega: x[0], Delta: x[1], MaxCompositionLen: 4}
		model, err := trainCorpus.Fit(opts)
		if err != nil {
			return 0
		}
		rep, err := model.EvaluateCorpus(valCorpus)
		if err != nil {
			return 0
		}
		return rep.F1
	}

	init := budget / 3
	if init < 2 {
		init = 2
	}
	bo, err := bayesopt.Maximize(objective, space, bayesopt.Options{
		InitPoints: init,
		Iterations: budget - init,
		Seed:       s.Config.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: BO on %s: %w", name, err)
	}
	random, err := bayesopt.RandomSearch(objective, space, budget, s.Config.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: random search on %s: %w", name, err)
	}
	grid, err := bayesopt.GridSearch(objective, space)
	if err != nil {
		return nil, fmt.Errorf("experiments: grid search on %s: %w", name, err)
	}
	return []OptimizerComparison{
		{Strategy: "bayesian", BestScore: bo.BestValue, Evaluations: bo.Evaluations},
		{Strategy: "random", BestScore: random.BestValue, Evaluations: random.Evaluations},
		{Strategy: "grid", BestScore: grid.BestValue, Evaluations: grid.Evaluations},
	}, nil
}

// FormatOptimizerComparison renders the comparison.
func FormatOptimizerComparison(name string, rows []OptimizerComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hyper-parameter search strategies on %s (validation F1)\n", name)
	header := []string{"Strategy", "best F1", "evaluations"}
	var body [][]string
	for _, r := range rows {
		body = append(body, []string{r.Strategy, fmt.Sprintf("%.3f", r.BestScore), fmt.Sprint(r.Evaluations)})
	}
	b.WriteString(FormatTable(header, body))
	b.WriteString("(§3.6: grid search finds the optimum at full cost; BO should approach it on a fraction of the budget)\n")
	return b.String()
}
