package cdt

// Resolution-pyramid models: the same feed trained at several temporal
// resolutions at once, built on the shared ensemble layer (fusion.go).
// The paper's rules are single-scale — one (ω, δ, ε) labeling per model,
// so a rule can only describe anomalies at the resolution it was trained
// at. Following CRAFTIIF's observation that analyzing several
// resolutions at once is what separates point, contextual, and
// collective anomalies, a PyramidModel trains one CDT per downsampled
// scale (through the Corpus cache — per-resolution corpora are just more
// cache keys), fuses fired rules across scales at detection time, and
// tags every detection with the anomaly type its rule-shape × scale
// signature implies:
//
//	point       only the original resolution fired, with a peak-shaped
//	            rule (PP/PN in a positive composition) — a single
//	            extremal reading
//	contextual  a single scale fired without a base-scale peak — a shape
//	            abnormal for its local context (a slow-scale-only ECN,
//	            or a fast-scale non-peak run)
//	collective  two or more scales fired over overlapping points —
//	            agreement across resolutions marks a sustained episode
//
// Scale geometry: the scale at factor f sees bucket b as the aggregate
// of raw points [b·f, b·f+f−1], so its window w (covering downsampled
// points w+1..w+ω) projects onto raw points [(w+1)·f, (w+ω+1)·f − 1].
// Fusion happens at the raw-point level: a point is flagged when the
// per-scale coverage verdicts satisfy the configured Fusion policy, and
// consecutive flagged points merge into one fused detection carrying the
// per-scale breakdown. With a single scale and the FuseAny default the
// fused flags equal Model.PointFlags exactly (pinned by
// TestPyramidSingleScaleGolden).

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"cdt/internal/evalmetrics"
	"cdt/internal/telemetry"
	"cdt/internal/trace"
)

// AnomalyType tags a pyramid detection with the anomaly class its
// rule-shape × scale signature implies.
type AnomalyType string

const (
	// TypePoint is a single extremal reading: only the original
	// resolution fired, with a peak-shaped rule.
	TypePoint AnomalyType = "point"
	// TypeContextual is a shape abnormal for its context: a single scale
	// fired, without a base-scale peak.
	TypeContextual AnomalyType = "contextual"
	// TypeCollective is a sustained episode: two or more scales fired
	// over overlapping points.
	TypeCollective AnomalyType = "collective"
)

// ScaleDetection is one scale's fired window inside a pyramid detection.
type ScaleDetection struct {
	// Factor is the scale's downsample factor (1 = original resolution).
	Factor int
	// Window is the scale-local sliding-window index (as in the scale
	// model's DetectWindows over the downsampled series).
	Window int
	// Start and End delimit the covered original-resolution points
	// (inclusive, 0-based).
	Start, End int
	// Fired lists the scale model's matching rule predicates.
	Fired []FiredPredicate
}

// PyramidConfig configures a resolution pyramid.
type PyramidConfig struct {
	// Factors are the downsample factors, strictly increasing, starting
	// at 1 (the original resolution is always a member — it anchors
	// anomaly typing, streaming readiness, and drift baselines). 1–8
	// scales.
	Factors []int
	// Aggregator names the downsampling bucket aggregation: "mean"
	// (default) or "max". "sum" is excluded because it leaves the [0,1]
	// normalization range.
	Aggregator string
	// Fusion combines per-scale point coverage into the fused verdict.
	// The zero value is FuseAny: any scale firing flags the point.
	Fusion Fusion
	// Dim is the input dimension the pyramid scores when the feed is
	// multivariate: every member's transform selects it before
	// resampling (a ChainTransform). Zero keeps the univariate shape —
	// members resample the first dimension directly, and existing
	// artifacts stay byte-stable.
	Dim int
}

// maxPyramidScales bounds the pyramid height; more scales than this is
// a configuration error, not a richer model.
const maxPyramidScales = 8

// Validate checks the configuration.
func (cfg PyramidConfig) Validate() error {
	if len(cfg.Factors) == 0 {
		return fmt.Errorf("cdt: pyramid needs at least one factor")
	}
	if len(cfg.Factors) > maxPyramidScales {
		return fmt.Errorf("cdt: %d pyramid scales, want at most %d", len(cfg.Factors), maxPyramidScales)
	}
	if cfg.Factors[0] != 1 {
		return fmt.Errorf("cdt: pyramid factors must start at 1 (got %d): the original resolution anchors typing and streaming", cfg.Factors[0])
	}
	for i := 1; i < len(cfg.Factors); i++ {
		if cfg.Factors[i] <= cfg.Factors[i-1] {
			return fmt.Errorf("cdt: pyramid factors must be strictly increasing (%d after %d)", cfg.Factors[i], cfg.Factors[i-1])
		}
	}
	if _, err := aggregatorOf(cfg.Aggregator); err != nil {
		return err
	}
	if cfg.Dim < 0 {
		return fmt.Errorf("cdt: pyramid dim %d, want >= 0", cfg.Dim)
	}
	// Like the omega/delta bounds at model load: a corrupted or
	// adversarial document must not smuggle in a dimension index that
	// drives huge feed allocations downstream.
	const maxDim = 1 << 20
	if cfg.Dim > maxDim {
		return fmt.Errorf("cdt: implausible pyramid dim %d (max %d)", cfg.Dim, maxDim)
	}
	return cfg.Fusion.Validate(fmt.Sprintf("pyramid scales %v", cfg.Factors), len(cfg.Factors))
}

// memberTransform builds scale f's input transform: a resampler,
// prefixed by a dimension selection when the pyramid scores one
// dimension of a multivariate feed. Dim 0 keeps the bare resampler
// (which reads the first dimension anyway), so univariate pyramids —
// and their persisted documents — are untouched by the composition.
func (cfg PyramidConfig) memberTransform(f int) Transform {
	rt := ResampleTransform{Factor: f, Aggregator: cfg.Aggregator}
	if cfg.Dim > 0 {
		return ChainTransform{DimTransform{Dim: cfg.Dim}, rt}
	}
	return rt
}

// PyramidModel is one trained CDT per resolution scale plus the fusion
// policy — an Ensemble whose members resample instead of selecting
// dimensions.
type PyramidModel struct {
	// Opts is the shared per-scale training configuration.
	Opts Options
	// Config is the pyramid shape.
	Config PyramidConfig

	ens Ensemble
}

// FitPyramid trains one CDT per resolution scale over the training
// series. Each scale trains on the series downsampled by its factor
// (anomaly annotations survive: a bucket is anomalous when any covered
// point was), all sharing ω, δ, ε.
func FitPyramid(train []*Series, opts Options, cfg PyramidConfig) (*PyramidModel, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("cdt: no training series")
	}
	c, err := NewCorpus(train)
	if err != nil {
		return nil, err
	}
	return c.FitPyramid(opts, cfg)
}

// FitPyramid trains a resolution pyramid over the corpus: each scale
// pulls its derived corpus from the resolution cache (AtResolution), so
// repeated pyramid fits — hyper-parameter sweeps, retraining — share
// every preprocessing stage per scale.
func (c *Corpus) FitPyramid(opts Options, cfg PyramidConfig) (*PyramidModel, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pm := &PyramidModel{Opts: opts, Config: cfg}
	pm.ens.Fuse = cfg.Fusion
	for _, f := range cfg.Factors {
		rc, err := c.AtResolution(f, cfg.Aggregator)
		if err != nil {
			return nil, err
		}
		model, err := rc.Fit(opts)
		if err != nil {
			return nil, fmt.Errorf("cdt: pyramid scale x%d: %w", f, err)
		}
		pm.ens.Members = append(pm.ens.Members, Member{
			Name:      fmt.Sprintf("x%d", f),
			Model:     model,
			Transform: cfg.memberTransform(f),
		})
	}
	return pm, nil
}

// FitPyramidMulti trains a resolution pyramid over one dimension of
// aligned multivariate feeds: dimension cfg.Dim of every feed, carrying
// the feed's shared anomaly annotation, rides the same per-scale Corpus
// pipeline as univariate pyramids, and every member's transform selects
// the dimension before resampling, so the trained pyramid detects
// directly on multivariate input (DetectPyramidMulti).
func FitPyramidMulti(train []*MultiSeries, opts Options, cfg PyramidConfig) (*PyramidModel, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("cdt: no training feeds")
	}
	perDim := make([]*Series, len(train))
	for i, ms := range train {
		if err := ms.Validate(); err != nil {
			return nil, err
		}
		if cfg.Dim < 0 || cfg.Dim >= len(ms.Dims) {
			return nil, fmt.Errorf("cdt: pyramid dim %d outside feed %q's %d dimensions", cfg.Dim, ms.Name, len(ms.Dims))
		}
		d := ms.Dims[cfg.Dim]
		perDim[i] = NewLabeledSeries(d.Name, d.Values, ms.Anomalies)
	}
	return FitPyramid(perDim, opts, cfg)
}

// NumScales returns the number of resolution scales.
func (pm *PyramidModel) NumScales() int { return len(pm.ens.Members) }

// Scales returns the downsample factors, fastest first.
func (pm *PyramidModel) Scales() []int {
	out := make([]int, len(pm.Config.Factors))
	copy(out, pm.Config.Factors)
	return out
}

// ScaleModel returns scale i's trained CDT (i indexes Scales()).
func (pm *PyramidModel) ScaleModel(i int) *Model { return pm.ens.Members[i].Model }

// NumRules sums the rule counts of all scale models.
func (pm *PyramidModel) NumRules() int { return pm.ens.NumRules() }

// TrainingAnomalyRate returns the original-resolution model's training
// anomaly rate — the baseline drift detection compares live fire rates
// against. The base scale sees every window the feed produces, so its
// rate is the comparable one.
func (pm *PyramidModel) TrainingAnomalyRate() float64 {
	return pm.ens.Members[0].Model.TrainingAnomalyRate()
}

// RuleText renders each scale's rules under a header.
func (pm *PyramidModel) RuleText() string {
	var b strings.Builder
	for i, mem := range pm.ens.Members {
		f := pm.Config.Factors[i]
		fmt.Fprintf(&b, "scale x%d (1/%d resolution, %s):\n", f, f, canonicalAggregator(pm.Config.Aggregator))
		for _, line := range strings.Split(strings.TrimRight(mem.Model.RuleText(), "\n"), "\n") {
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Explain renders each scale's rules with shape sketches and
// plain-language descriptions, under per-scale headers.
func (pm *PyramidModel) Explain() string {
	var b strings.Builder
	for i, mem := range pm.ens.Members {
		f := pm.Config.Factors[i]
		fmt.Fprintf(&b, "scale x%d (1/%d resolution, %s):\n", f, f, canonicalAggregator(pm.Config.Aggregator))
		for _, line := range strings.Split(strings.TrimRight(mem.Model.Explain(), "\n"), "\n") {
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// anyPeak reports whether any of scale i's fired predicates is
// peak-shaped.
func (pm *PyramidModel) anyPeak(scale int, fired []FiredPredicate) bool {
	peaks := pm.ens.Members[scale].Model.predPeaks
	for _, fp := range fired {
		if fp.Index >= 1 && fp.Index <= len(peaks) && peaks[fp.Index-1] {
			return true
		}
	}
	return false
}

// classifyScales derives the anomaly type of one fused detection from
// its overlapping per-scale detections (ordered fastest scale first).
func (pm *PyramidModel) classifyScales(scales []ScaleDetection) AnomalyType {
	if len(scales) == 0 {
		return TypeContextual
	}
	distinct := 1
	for i := 1; i < len(scales); i++ {
		if scales[i].Factor != scales[i-1].Factor {
			distinct++
		}
	}
	if distinct >= 2 {
		return TypeCollective
	}
	if scales[0].Factor == 1 {
		for _, sd := range scales {
			if pm.anyPeak(0, sd.Fired) {
				return TypePoint
			}
		}
	}
	return TypeContextual
}

// detect is the univariate batch back end: the series becomes the sole
// input dimension of detectDims.
func (pm *PyramidModel) detect(ctx context.Context, s *Series) ([]WindowDetection, []bool, error) {
	ns, err := ensureNormalized(s)
	if err != nil {
		return nil, nil, err
	}
	return pm.detectDims(ctx, []*Series{ns})
}

// scaleCoverage sweeps every scale over the (already normalized) input
// dimensions and projects fired windows onto original-resolution
// points: per-scale coverage flags plus the per-scale detections.
// Shared by fused detection and fusion-weight training, which needs the
// raw per-scale indicators before any policy is applied. Each scale's
// sweep gets a "scale_sweep" span on a sampled ctx and is timed for the
// context's ScaleSweepObserver (the serving layer's per-scale latency
// histograms); timing goes through telemetry.Stopwatch, the sanctioned
// wall-clock boundary for this detfloat-guarded package.
func (pm *PyramidModel) scaleCoverage(ctx context.Context, dims []*Series) ([][]bool, [][]ScaleDetection, int, error) {
	obs := scaleSweepObserver(ctx)
	n := dims[0].Len()
	numScales := len(pm.ens.Members)
	coverage := make([][]bool, numScales)
	perScale := make([][]ScaleDetection, numScales)
	for i, mem := range pm.ens.Members {
		f := pm.Config.Factors[i]
		var sw telemetry.Stopwatch
		if obs != nil {
			sw = telemetry.NewStopwatch()
		}
		sctx, span := trace.StartSpan(ctx, "scale_sweep")
		span.SetAttr("factor", strconv.Itoa(f))
		// Downsample after normalizing (mean/max keep [0,1], so the
		// derived series is not re-stretched) — the same order training
		// applies through AtResolution.
		ds, err := mem.Transform.Apply(dims)
		if err != nil {
			span.End()
			return nil, nil, 0, fmt.Errorf("cdt: pyramid scale x%d: %w", f, err)
		}
		marks, err := mem.Model.detectMarks(sctx, ds)
		if err != nil {
			span.End()
			return nil, nil, 0, fmt.Errorf("cdt: pyramid scale x%d: %w", f, err)
		}
		cov := make([]bool, n)
		var idxs []int
		for w := 0; w < marks.NumWindows(); w++ {
			if !marks.Fired(w) {
				continue
			}
			idxs = marks.AppendFired(idxs[:0], w)
			start := (w + 1) * f
			end := (w+pm.Opts.Omega+1)*f - 1
			if end >= n {
				end = n - 1
			}
			perScale[i] = append(perScale[i], ScaleDetection{
				Factor: f,
				Window: w,
				Start:  start,
				End:    end,
				Fired:  mem.Model.firedFromIndices(idxs),
			})
			for p := start; p <= end; p++ {
				cov[p] = true
			}
		}
		coverage[i] = cov
		span.End()
		if obs != nil {
			obs(i, f, sw.Elapsed().Seconds())
		}
	}
	return coverage, perScale, n, nil
}

// fusePoints applies the fusion policy per original-resolution point
// over the per-scale coverage flags.
func (pm *PyramidModel) fusePoints(coverage [][]bool, n int) []bool {
	numScales := len(pm.ens.Members)
	flags := make([]bool, n)
	for p := 0; p < n; p++ {
		count, weight := 0, 0.0
		for i := range coverage {
			if coverage[i][p] {
				count++
				weight += pm.ens.Fuse.weight(i)
			}
		}
		flags[p] = pm.ens.Fuse.decide(count, weight, numScales)
	}
	return flags
}

// detectDims is the shared batch back end over normalized input
// dimensions: per-scale sweeps projected onto original-resolution
// points, fused per point, merged into ranges. On a sampled ctx the
// whole scoring runs under a "detect" span with a "scale_sweep" child
// per scale and a "fusion_decide" child over the point-level fusion.
func (pm *PyramidModel) detectDims(ctx context.Context, dims []*Series) ([]WindowDetection, []bool, error) {
	ctx, span := trace.StartSpan(ctx, "detect")
	coverage, perScale, n, err := pm.scaleCoverage(ctx, dims)
	if err != nil {
		span.End()
		return nil, nil, err
	}
	_, fspan := trace.StartSpan(ctx, "fusion_decide")
	fspan.SetAttr("policy", pm.ens.Fuse.String())
	flags := pm.fusePoints(coverage, n)
	fspan.End()
	var out []WindowDetection
	for p := 0; p < n; {
		if !flags[p] {
			p++
			continue
		}
		start := p
		for p < n && flags[p] {
			p++
		}
		end := p - 1
		var scales []ScaleDetection
		for i := range perScale {
			for _, sd := range perScale[i] {
				if sd.Start <= end && start <= sd.End {
					scales = append(scales, sd)
				}
			}
		}
		var fired []FiredPredicate
		if len(scales) > 0 {
			// The fastest overlapping scale's first firing carries the
			// headline explanation; the full breakdown is in Scales.
			fired = scales[0].Fired
		}
		out = append(out, WindowDetection{
			Window: len(out),
			Start:  start,
			End:    end,
			Fired:  fired,
			Type:   pm.classifyScales(scales),
			Scales: scales,
		})
	}
	span.SetAttr("fired", strconv.Itoa(len(out)))
	span.End()
	return out, flags, nil
}

// DetectPyramid runs every scale over the series and returns the fused
// detections. Each detection covers one maximal run of fused-flagged
// points (Start/End are original-resolution indices, Window is the
// detection's ordinal), carries the anomaly-type tag, the per-scale
// breakdown in Scales, and the fastest firing scale's predicates as the
// headline Fired set.
func (pm *PyramidModel) DetectPyramid(s *Series) ([]WindowDetection, error) {
	out, _, err := pm.detect(context.Background(), s)
	return out, err
}

// DetectExplained is DetectPyramid under the shared Artifact surface, so
// batch serving scores pyramids and plain models through one call. ctx
// carries request-scoped instrumentation (spans, sweep observer).
func (pm *PyramidModel) DetectExplained(ctx context.Context, s *Series) ([]WindowDetection, error) {
	out, _, err := pm.detect(ctx, s)
	return out, err
}

// ScoreRanges reports the same fused point ranges DetectExplained would
// plus per-scale fired/swept window counts, skipping the per-run scale
// breakdowns, anomaly typing, and rule rendering — the lean surface
// shadow scoring runs a candidate through.
func (pm *PyramidModel) ScoreRanges(ctx context.Context, s *Series) (RangeStats, error) {
	ctx, span := trace.StartSpan(ctx, "score_ranges")
	defer span.End()
	ns, err := ensureNormalized(s)
	if err != nil {
		return RangeStats{}, err
	}
	dims := []*Series{ns}
	n := ns.Len()
	numScales := len(pm.ens.Members)
	coverage := make([][]bool, numScales)
	st := RangeStats{
		ScaleFired:   make([]int, numScales),
		ScaleWindows: make([]int, numScales),
	}
	for i, mem := range pm.ens.Members {
		f := pm.Config.Factors[i]
		sctx, sspan := trace.StartSpan(ctx, "scale_sweep")
		sspan.SetAttr("factor", strconv.Itoa(f))
		ds, err := mem.Transform.Apply(dims)
		if err != nil {
			sspan.End()
			return RangeStats{}, fmt.Errorf("cdt: pyramid scale x%d: %w", f, err)
		}
		marks, err := mem.Model.detectMarks(sctx, ds)
		if err != nil {
			sspan.End()
			return RangeStats{}, fmt.Errorf("cdt: pyramid scale x%d: %w", f, err)
		}
		cov := make([]bool, n)
		st.ScaleWindows[i] = marks.NumWindows()
		for w := 0; w < marks.NumWindows(); w++ {
			if !marks.Fired(w) {
				continue
			}
			st.ScaleFired[i]++
			start := (w + 1) * f
			end := (w+pm.Opts.Omega+1)*f - 1
			if end >= n {
				end = n - 1
			}
			for p := start; p <= end; p++ {
				cov[p] = true
			}
		}
		coverage[i] = cov
		sspan.End()
	}
	_, fspan := trace.StartSpan(ctx, "fusion_decide")
	flags := pm.fusePoints(coverage, n)
	fspan.End()
	for p := 0; p < n; {
		if !flags[p] {
			p++
			continue
		}
		start := p
		for p < n && flags[p] {
			p++
		}
		st.Ranges = append(st.Ranges, [2]int{start, p - 1})
	}
	return st, nil
}

// PointFlags returns the fused per-point anomaly flags — with a single
// scale and the FuseAny default, exactly Model.PointFlags.
func (pm *PyramidModel) PointFlags(s *Series) ([]bool, error) {
	_, flags, err := pm.detect(context.Background(), s)
	return flags, err
}

// normalizedDims validates a multivariate feed against the pyramid's
// configured dimension and normalizes every dimension independently —
// the same per-dimension normalization training applies through the
// Corpus pipeline.
func (pm *PyramidModel) normalizedDims(ms *MultiSeries) ([]*Series, error) {
	if err := ms.Validate(); err != nil {
		return nil, err
	}
	if pm.Config.Dim >= len(ms.Dims) {
		return nil, fmt.Errorf("cdt: pyramid scores dimension %d, feed %q has %d", pm.Config.Dim, ms.Name, len(ms.Dims))
	}
	dims := make([]*Series, len(ms.Dims))
	for d, s := range ms.Dims {
		ns, err := ensureNormalized(s)
		if err != nil {
			return nil, err
		}
		dims[d] = ns
	}
	return dims, nil
}

// DetectPyramidMulti runs the fused detection over one multivariate
// feed: the member transforms select the configured dimension and
// resample it, so the returned detections have exactly the shape of
// DetectPyramid over that dimension.
func (pm *PyramidModel) DetectPyramidMulti(ms *MultiSeries) ([]WindowDetection, error) {
	dims, err := pm.normalizedDims(ms)
	if err != nil {
		return nil, err
	}
	out, _, err := pm.detectDims(context.Background(), dims)
	return out, err
}

// PointFlagsMulti returns the fused per-point flags over one
// multivariate feed — PointFlags with the member transforms selecting
// the configured dimension.
func (pm *PyramidModel) PointFlagsMulti(ms *MultiSeries) ([]bool, error) {
	dims, err := pm.normalizedDims(ms)
	if err != nil {
		return nil, err
	}
	_, flags, err := pm.detectDims(context.Background(), dims)
	return flags, err
}

// trainableFusion reports whether TrainFusion has parameters to learn
// for the configured policy.
func (pm *PyramidModel) trainableFusion() bool {
	p := pm.Config.Fusion.Policy
	return p == FuseWeighted || p == FuseKOfN
}

// applyFusionFit fits the configured trainable policy over accumulated
// fire-indicator samples and installs the result.
func (pm *PyramidModel) applyFusionFit(fired [][]bool, truth []bool) error {
	var fu Fusion
	var err error
	switch pm.Config.Fusion.Policy {
	case FuseWeighted:
		fu, err = FitFusionWeights(fired, truth)
	case FuseKOfN:
		fu, err = FitFusionK(fired, truth)
	default:
		return nil
	}
	if err != nil {
		return err
	}
	pm.Config.Fusion = fu
	pm.ens.Fuse = fu
	return nil
}

// fusionSamples appends one fire-indicator row and label per point of a
// normalized input to the accumulators: the per-scale point-coverage
// indicators detection fuses over, against the point annotations.
func (pm *PyramidModel) fusionSamples(dims []*Series, anomalies []bool, fired [][]bool, truth []bool) ([][]bool, []bool, error) {
	coverage, _, n, err := pm.scaleCoverage(context.Background(), dims)
	if err != nil {
		return nil, nil, err
	}
	for p := 0; p < n; p++ {
		row := make([]bool, len(coverage))
		for i := range coverage {
			row[i] = coverage[i][p]
		}
		fired = append(fired, row)
		truth = append(truth, anomalies[p])
	}
	return fired, truth, nil
}

// TrainFusion learns the pyramid's fusion parameters from labeled
// series — the step that turns `weighted` and `k-of-n` from hand-set
// policies into trained ones. Per-scale point-coverage indicators (the
// same projection detection fuses over) form the fire matrix, the point
// annotations the labels: FuseWeighted runs the deterministic logistic
// fit (FitFusionWeights), FuseKOfN sweeps the quorum for the best
// point-level F1 (FitFusionK), overwriting any hand-set parameters.
// Policies without trainable parameters return unchanged.
func (pm *PyramidModel) TrainFusion(train []*Series) error {
	if !pm.trainableFusion() {
		return nil
	}
	var fired [][]bool
	var truth []bool
	for _, s := range train {
		if s.Anomalies == nil {
			return fmt.Errorf("cdt: series %q is unlabeled", s.Name)
		}
		ns, err := ensureNormalized(s)
		if err != nil {
			return err
		}
		if fired, truth, err = pm.fusionSamples([]*Series{ns}, s.Anomalies, fired, truth); err != nil {
			return err
		}
	}
	return pm.applyFusionFit(fired, truth)
}

// TrainFusionMulti is TrainFusion over labeled multivariate feeds: the
// member transforms select the configured dimension, the feeds' shared
// annotations are the labels.
func (pm *PyramidModel) TrainFusionMulti(train []*MultiSeries) error {
	if !pm.trainableFusion() {
		return nil
	}
	var fired [][]bool
	var truth []bool
	for _, ms := range train {
		if ms.Anomalies == nil {
			return fmt.Errorf("cdt: feed %q is unlabeled", ms.Name)
		}
		dims, err := pm.normalizedDims(ms)
		if err != nil {
			return err
		}
		if fired, truth, err = pm.fusionSamples(dims, ms.Anomalies, fired, truth); err != nil {
			return err
		}
	}
	return pm.applyFusionFit(fired, truth)
}

// Evaluate scores the fused detection on labeled series. Unlike
// Model.Evaluate, which is window-level (scales are not window-aligned,
// so there is no shared window clock to score on), pyramid evaluation is
// point-level: fused point flags against the per-point annotations. Q
// and FH are zero — rule quality is a per-scale notion; audit the scale
// models individually for it.
func (pm *PyramidModel) Evaluate(eval []*Series) (Report, error) {
	if len(eval) == 0 {
		return Report{}, fmt.Errorf("cdt: no evaluation series")
	}
	var conf evalmetrics.Confusion
	for _, s := range eval {
		if s.Anomalies == nil {
			return Report{}, fmt.Errorf("cdt: series %q is unlabeled", s.Name)
		}
		flags, err := pm.PointFlags(s)
		if err != nil {
			return Report{}, err
		}
		for p := range flags {
			conf.Add(flags[p], s.Anomalies[p])
		}
	}
	return Report{
		Confusion: conf,
		F1:        conf.F1(),
		NumRules:  pm.NumRules(),
	}, nil
}

// EvaluateMulti is Evaluate over labeled multivariate feeds: fused
// point flags on the configured dimension against each feed's shared
// annotations.
func (pm *PyramidModel) EvaluateMulti(eval []*MultiSeries) (Report, error) {
	if len(eval) == 0 {
		return Report{}, fmt.Errorf("cdt: no evaluation feeds")
	}
	var conf evalmetrics.Confusion
	for _, ms := range eval {
		if ms.Anomalies == nil {
			return Report{}, fmt.Errorf("cdt: feed %q is unlabeled", ms.Name)
		}
		flags, err := pm.PointFlagsMulti(ms)
		if err != nil {
			return Report{}, err
		}
		for p := range flags {
			conf.Add(flags[p], ms.Anomalies[p])
		}
	}
	return Report{
		Confusion: conf,
		F1:        conf.F1(),
		NumRules:  pm.NumRules(),
	}, nil
}

// recentRanges caps how many past detection ranges each scale keeps for
// the streaming cross-scale overlap check.
const recentRanges = 8

// pyramidScaleStream is one scale's online state: a bucket accumulator
// feeding the scale model's stream.
type pyramidScaleStream struct {
	factor int
	stream *Stream
	bucket []float64
}

// rawRange is a detection's covered original-resolution points.
type rawRange struct{ start, end int }

// PyramidStream is the online detector of a PyramidModel: one bucket
// accumulator plus model stream per scale, detections projected back to
// original-resolution indices and typed at emission. It is not safe for
// concurrent use.
//
// Streaming semantics differ from batch in three documented ways:
// scales emit as they become decidable (any-scale semantics — stricter
// Fusion policies apply to batch detection, where all scales are known);
// a trailing partial bucket is never scored (batch aggregates it); and a
// detection emitted before a slower scale fires over the same points is
// typed without that future knowledge (the slower scale's own detection,
// arriving later, is typed collective). The base scale (factor 1)
// behaves exactly like the plain model's Stream.
type PyramidStream struct {
	pm     *PyramidModel
	scales []pyramidScaleStream
	recent [][]rawRange

	n          int
	detections uint64
	resets     uint64
}

// NewStream starts an online pyramid detector. The scale semantics are
// those of Model.NewStream; every resolution shares the value range.
// For a pyramid trained over one dimension of a multivariate feed
// (Config.Dim), push that dimension's readings: streaming is scalar by
// construction, and the member transforms' dimension selection happens
// at the feed boundary, not per push.
// Normalize-then-aggregate (batch) and aggregate-then-normalize
// (streaming) agree for mean and max under an affine scale; out-of-range
// values clamp after aggregation here, per-point in batch.
func (pm *PyramidModel) NewStream(scale Scale) (*PyramidStream, error) {
	ps := &PyramidStream{pm: pm}
	for i, mem := range pm.ens.Members {
		f := pm.Config.Factors[i]
		st, err := mem.Model.NewStream(scale)
		if err != nil {
			return nil, err
		}
		ps.scales = append(ps.scales, pyramidScaleStream{
			factor: f,
			stream: st,
			bucket: make([]float64, 0, f),
		})
	}
	ps.recent = make([][]rawRange, len(ps.scales))
	return ps, nil
}

// classifyLive types a detection at emission from scale si over raw
// points [rs, re].
func (ps *PyramidStream) classifyLive(si, rs, re int, fired []FiredPredicate) AnomalyType {
	for sj := range ps.recent {
		if sj == si {
			continue
		}
		for _, r := range ps.recent[sj] {
			if r.start <= re && rs <= r.end {
				return TypeCollective
			}
		}
	}
	if ps.pm.Config.Factors[si] == 1 && ps.pm.anyPeak(si, fired) {
		return TypePoint
	}
	return TypeContextual
}

// remember records a detection range for future cross-scale checks,
// keeping the last recentRanges per scale.
func (ps *PyramidStream) remember(si, rs, re int) {
	r := ps.recent[si]
	if len(r) == recentRanges {
		copy(r, r[1:])
		r = r[:recentRanges-1]
	}
	ps.recent[si] = append(r, rawRange{start: rs, end: re})
}

// Push consumes the next original-resolution reading and returns every
// scale detection that became decidable with it, fastest scale first.
// Each detection carries original-resolution indices, the firing scale's
// factor, and the anomaly-type tag.
func (ps *PyramidStream) Push(value float64) []Detection {
	ps.n++
	var out []Detection
	for si := range ps.scales {
		acc := &ps.scales[si]
		acc.bucket = append(acc.bucket, value)
		if len(acc.bucket) < acc.factor {
			continue
		}
		agg, _ := aggregatorOf(ps.pm.Config.Aggregator)
		v := agg(acc.bucket)
		acc.bucket = acc.bucket[:0]
		for _, d := range acc.stream.Push(v) {
			rs := d.WindowStart * acc.factor
			re := d.WindowEnd*acc.factor + acc.factor - 1
			typ := ps.classifyLive(si, rs, re, d.Fired)
			ps.remember(si, rs, re)
			ps.detections++
			out = append(out, Detection{
				WindowStart: rs,
				WindowEnd:   re,
				Fired:       d.Fired,
				Scale:       acc.factor,
				Type:        typ,
			})
		}
	}
	return out
}

// Points returns the number of original-resolution readings consumed.
func (ps *PyramidStream) Points() int { return ps.n }

// Ready reports whether the base scale has seen enough points to
// evaluate full windows (slower scales need proportionally more).
func (ps *PyramidStream) Ready() bool { return ps.scales[0].stream.Ready() }

// Stats aggregates the per-scale streams' activity.
func (ps *PyramidStream) Stats() StreamStats {
	return StreamStats{Points: ps.n, Detections: ps.detections, Resets: ps.resets}
}

// Reset clears every scale's stream, bucket, and recent-detection state,
// keeping the models and scale.
func (ps *PyramidStream) Reset() {
	ps.n = 0
	ps.resets++
	for si := range ps.scales {
		ps.scales[si].bucket = ps.scales[si].bucket[:0]
		ps.scales[si].stream.Reset()
		ps.recent[si] = nil
	}
}
