package modelstore

// Drift-triggered retraining: when the serving layer marks a model
// stale, it asks a Retrainer for a fresh candidate document and
// publishes it to the store unpromoted — a human still signs off on the
// promotion, keeping the paper's interpretability-first loop intact.
// CorpusRetrainer is the standard implementation: re-run the Bayesian
// hyper-parameter search over cached corpora (the same Corpus pipeline
// training uses, so repeated retrains share labelings and windows) and
// serialize the winner.

import (
	"bytes"
	"fmt"

	cdt "cdt"
)

// CorpusRetrainer re-optimizes (ω, δ) over pre-built corpora via
// cdt.OptimizeCorpus and fits the winning configuration. It is safe for
// concurrent use if its corpora are (cdt.Corpus is).
type CorpusRetrainer struct {
	// Train and Validation are the cached corpora the search runs over.
	Train, Validation *cdt.Corpus
	// Objective selects what the search maximizes (default F(h), the
	// paper's accuracy-×-interpretability trade).
	Objective cdt.Objective
	// Opts tunes the search. Opts.Base is overridden per call with the
	// incumbent's options so the retrained model stays in the same
	// family (criterion, matching, ε); Opts.Trace is honored — wire the
	// PR-5 trace hook here to stream per-trial progress.
	Opts cdt.OptimizeOptions
}

// Retrain runs the search and returns the serialized winning model plus
// a human-readable note for the store's version metadata.
func (r *CorpusRetrainer) Retrain(name string, incumbent *cdt.Model) ([]byte, string, error) {
	if r.Train == nil || r.Validation == nil {
		return nil, "", fmt.Errorf("modelstore: retrainer for %s has no corpora", name)
	}
	opts := r.Opts
	if incumbent != nil {
		opts.Base = incumbent.Opts
	}
	res, err := cdt.OptimizeCorpus(r.Train, r.Validation, r.Objective, opts)
	if err != nil {
		return nil, "", fmt.Errorf("modelstore: retraining %s: %w", name, err)
	}
	model, err := r.Train.Fit(res.Best)
	if err != nil {
		return nil, "", fmt.Errorf("modelstore: fitting retrained %s: %w", name, err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		return nil, "", fmt.Errorf("modelstore: serializing retrained %s: %w", name, err)
	}
	note := fmt.Sprintf("drift retrain: omega=%d delta=%d %s=%.3f over %d evaluations",
		res.Best.Omega, res.Best.Delta, r.Objective, res.BestScore, res.Evaluations)
	return buf.Bytes(), note, nil
}
