// Calorie monitoring: the paper's motivating scenario. Building heating
// sensors produce daily consumption series; meters fail in characteristic
// ways (negative readings, overconsumption, reading faults, stopped
// meters). This example trains CDT on several buildings, shows the rules
// the way Table 5 presents them to domain experts — with shape sketches
// and plain-language readings — and audits a held-out building.
//
//	go run ./examples/calorie
package main

import (
	"fmt"
	"log"

	cdt "cdt"
	"cdt/internal/datasets/sge"
)

func main() {
	corpus := sge.Calorie(sge.CalorieOptions{Sensors: 6, Days: 600, Seed: 11})

	// Train on five buildings, audit the sixth.
	var train []*cdt.Series
	for _, s := range corpus.Series[:5] {
		train = append(train, s)
	}
	audit := corpus.Series[5]

	opts := cdt.Options{Omega: 5, Delta: 2}
	model, err := cdt.Fit(train, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Trained on %d buildings (%d anomalies annotated).\n\n",
		len(train), corpus.TotalAnomalies()-audit.AnomalyCount())
	fmt.Println("Rules, as presented to the energy-management experts:")
	fmt.Println()
	fmt.Print(model.Explain())

	rep, err := model.Evaluate([]*cdt.Series{audit})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAudit of held-out building %q: F1=%.2f (precision %.2f, recall %.2f)\n",
		audit.Name, rep.F1, rep.Confusion.Precision(), rep.Confusion.Recall())

	flags, err := model.PointFlags(audit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Flagged days:")
	for day, flagged := range flags {
		if flagged {
			status := "false alarm"
			if audit.Anomalies[day] {
				status = "confirmed"
			}
			fmt.Printf("  day %4d  consumption %8.1f  (%s)\n", day, audit.Values[day], status)
		}
	}
}
