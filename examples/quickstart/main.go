// Quickstart: train a Composition-based Decision Tree on a small labeled
// series, print the human-readable anomaly rules, and detect anomalies in
// fresh data.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	cdt "cdt"
)

// makeSeries builds a smooth sensor-like signal with labeled spikes.
func makeSeries(name string, n int, spikes []int, seed int64) *cdt.Series {
	rng := rand.New(rand.NewSource(seed))
	values := make([]float64, n)
	anomalies := make([]bool, n)
	for i := range values {
		values[i] = 50 + 10*math.Sin(float64(i)/6) + rng.Float64()
	}
	for _, at := range spikes {
		values[at] = 180 // a reading far outside the normal band
		anomalies[at] = true
	}
	return cdt.NewLabeledSeries(name, values, anomalies)
}

func main() {
	train := makeSeries("train", 400, []int{60, 150, 240, 330}, 1)

	// ω is the sliding-window size, δ the magnitude granularity of the
	// pattern alphabet (the paper's two hyper-parameters).
	model, err := cdt.Fit([]*cdt.Series{train}, cdt.Options{Omega: 5, Delta: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Learned rules:")
	fmt.Print(model.RuleText())

	rep, err := model.Evaluate([]*cdt.Series{train})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraining fit: F1=%.2f  Q(R)=%.2f  F(h)=%.2f  rules=%d\n\n",
		rep.F1, rep.Q, rep.FH, rep.NumRules)

	// Detect on a fresh, unlabeled series.
	fresh := makeSeries("fresh", 300, []int{75, 210}, 99)
	unlabeled := cdt.NewSeries("fresh", fresh.Values)
	flags, err := model.PointFlags(unlabeled)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Detections on fresh data:")
	for i, flagged := range flags {
		if flagged {
			fmt.Printf("  point %3d  value %.1f\n", i, fresh.Values[i])
		}
	}
}
