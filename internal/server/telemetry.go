package server

// Serving-side observability: per-endpoint request counters and latency
// histograms, an in-flight gauge, request-ID propagation, structured
// access logs, the GET /metrics Prometheus endpoint, and the opt-in
// debug mux carrying net/http/pprof. The legacy expvar map ("cdtserve",
// served at /debug/vars) stays alive for existing dashboards; the
// telemetry registry is the forward-looking surface.
//
// Instrumentation sits on the request hot path, so every per-request
// metric is pre-resolved at route-registration time (no vector lookups
// per request) and every write is a lock-free atomic — the serving
// benchmarks gate on the overhead staying under 3%.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	cdt "cdt"
	"cdt/internal/telemetry"
)

// serverMetrics bundles one server's telemetry registry and the
// pre-resolved instruments its hot paths write to.
type serverMetrics struct {
	reg *telemetry.Registry

	requests *telemetry.CounterVec   // cdtserve_http_requests_total{endpoint,code}
	latency  *telemetry.HistogramVec // cdtserve_http_request_seconds{endpoint}
	inFlight *telemetry.Gauge        // cdtserve_http_in_flight

	batchSeries      *telemetry.Counter    // cdtserve_batch_series_total
	batchDetections  *telemetry.Counter    // cdtserve_detections_total{source="batch"}
	streamDetections *telemetry.Counter    // cdtserve_detections_total{source="stream"}
	anomalyTypes     *telemetry.CounterVec // cdtserve_anomaly_types_total{model,type}
	pushLatency      *telemetry.Histogram  // cdtserve_stream_push_seconds
	sessionsEvicted  *telemetry.Counter    // cdtserve_stream_sessions_evicted_total
	reloads          *telemetry.Counter    // cdtserve_model_reloads_total

	// Per-rule attribution (attribution.go): children are resolved into
	// the per-model modelAttr cache, never on the scoring path.
	ruleFired  *telemetry.CounterVec   // cdtserve_rule_fired_total{model,rule}
	scaleSweep *telemetry.HistogramVec // cdtserve_scale_sweep_seconds{model,scale}

	// Model-lifecycle instruments (model store, shadows, drift).
	shadowWindows   *telemetry.CounterVec   // cdtserve_shadow_windows_total{model,outcome}
	shadowFireRate  *telemetry.HistogramVec // cdtserve_shadow_fire_rate{model,role}
	shadowScaleRate *telemetry.HistogramVec // cdtserve_shadow_scale_fire_rate{model,scale}
	shadowDropped   *telemetry.Counter      // cdtserve_shadow_dropped_total
	staleModels     *telemetry.GaugeVec     // cdtserve_model_stale{model}
	retrains        *telemetry.CounterVec   // cdtserve_retrains_total{status}
	promotes        *telemetry.Counter      // cdtserve_model_promotes_total
	rollbacks       *telemetry.Counter      // cdtserve_model_rollbacks_total
}

// fireRateBuckets shape the shadow fire-rate histograms: fire rates live
// in [0, 1] and interesting mass sits near zero, so the default
// latency-shaped buckets would flatten everything into one bin.
var fireRateBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 0.75, 1}

// sweepBuckets shape the per-scale sweep latency histograms: a single
// scale sweep over a batch series runs tens of microseconds to low
// milliseconds, well under the request-latency DefBuckets floor.
var sweepBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
}

func newServerMetrics() *serverMetrics {
	reg := telemetry.NewRegistry()
	detections := reg.CounterVec("cdtserve_detections_total",
		"Anomaly detections returned, by source (batch or stream).", "source")
	m := &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("cdtserve_http_requests_total",
			"HTTP requests served, by endpoint and status-code class.", "endpoint", "code"),
		latency: reg.HistogramVec("cdtserve_http_request_seconds",
			"HTTP request latency in seconds, by endpoint.", nil, "endpoint"),
		inFlight: reg.Gauge("cdtserve_http_in_flight",
			"Requests currently being served."),
		batchSeries: reg.Counter("cdtserve_batch_series_total",
			"Series scored through POST /models/{name}/detect."),
		batchDetections:  detections.With("batch"),
		streamDetections: detections.With("stream"),
		anomalyTypes: reg.CounterVec("cdtserve_anomaly_types_total",
			"Pyramid detections by classified anomaly type "+
				"(point, contextual, collective).", "model", "type"),
		pushLatency: reg.Histogram("cdtserve_stream_push_seconds",
			"Stream-session Push scoring latency in seconds (excludes JSON codec time).", nil),
		sessionsEvicted: reg.Counter("cdtserve_stream_sessions_evicted_total",
			"Streaming sessions evicted after exceeding the idle TTL."),
		reloads: reg.Counter("cdtserve_model_reloads_total",
			"Successful model-registry reloads (SIGHUP or POST /models/reload)."),
		ruleFired: reg.CounterVec("cdtserve_rule_fired_total",
			"Rule-predicate firings observed while scoring, by model and stable "+
				"rule index (r<i>, or x<factor>.r<i> per pyramid scale; \"other\" "+
				"past the label cap).", "model", "rule"),
		scaleSweep: reg.HistogramVec("cdtserve_scale_sweep_seconds",
			"Per-scale pyramid sweep latency in seconds (transform + label + "+
				"engine sweep), by model and scale.", sweepBuckets, "model", "scale"),
		shadowWindows: reg.CounterVec("cdtserve_shadow_windows_total",
			"Shadow-compared detection outcomes, by model and outcome "+
				"(agree, incumbent_only, candidate_only).", "model", "outcome"),
		shadowFireRate: reg.HistogramVec("cdtserve_shadow_fire_rate",
			"Per-sample fire rate (fired windows / windows swept), by model and role "+
				"(incumbent or candidate).", fireRateBuckets, "model", "role"),
		shadowScaleRate: reg.HistogramVec("cdtserve_shadow_scale_fire_rate",
			"Per-sample candidate fire rate at one pyramid scale during shadow "+
				"evaluation (distinct fired windows / windows swept at that scale).",
			fireRateBuckets, "model", "scale"),
		shadowDropped: reg.Counter("cdtserve_shadow_dropped_total",
			"Batch samples dropped because the shadow-scoring queue was full."),
		staleModels: reg.GaugeVec("cdtserve_model_stale",
			"1 while the model's live fire rate has drifted past the configured bound.", "model"),
		retrains: reg.CounterVec("cdtserve_retrains_total",
			"Drift-triggered retrains, by status (ok, error, or skipped).", "status"),
		promotes: reg.Counter("cdtserve_model_promotes_total",
			"Store versions promoted to serving via POST /models/{name}/promote."),
		rollbacks: reg.Counter("cdtserve_model_rollbacks_total",
			"Store rollbacks applied via POST /models/{name}/rollback."),
	}
	// Training-side cache visibility: the corpus caches live in the root
	// package and aggregate process-wide, so a binary that both trains
	// and serves (or an experiments run scraped for progress) exposes its
	// cache behaviour here too. A pure serving process reports zeros.
	for _, c := range []struct {
		name, help, cache string
		fn                func(cdt.CorpusStats) uint64
	}{
		{"cdt_corpus_cache_hits_total", "Corpus pipeline-cache hits, by cache map.", "label",
			func(s cdt.CorpusStats) uint64 { return s.LabelHits }},
		{"cdt_corpus_cache_hits_total", "Corpus pipeline-cache hits, by cache map.", "window",
			func(s cdt.CorpusStats) uint64 { return s.WindowHits }},
		{"cdt_corpus_cache_misses_total", "Corpus pipeline-cache misses, by cache map.", "label",
			func(s cdt.CorpusStats) uint64 { return s.LabelMisses }},
		{"cdt_corpus_cache_misses_total", "Corpus pipeline-cache misses, by cache map.", "window",
			func(s cdt.CorpusStats) uint64 { return s.WindowMisses }},
		{"cdt_corpus_cache_evictions_total", "Corpus pipeline-cache evictions, by cache map.", "label",
			func(s cdt.CorpusStats) uint64 { return s.LabelEvictions }},
		{"cdt_corpus_cache_evictions_total", "Corpus pipeline-cache evictions, by cache map.", "window",
			func(s cdt.CorpusStats) uint64 { return s.WindowEvictions }},
	} {
		fn := c.fn
		reg.CounterFunc(c.name, c.help, func() uint64 { return fn(cdt.CorpusCacheStats()) }, "cache", c.cache)
	}
	return m
}

// --- request IDs -------------------------------------------------------

// ridPrefix makes request IDs unique across process restarts; the
// atomic counter makes them unique (and cheap) within one.
var ridPrefix = func() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: request id prefix: %v", err))
	}
	return hex.EncodeToString(b[:])
}()

var ridCounter atomic.Uint64

func nextRequestID() string {
	return ridPrefix + "-" + strconv.FormatUint(ridCounter.Add(1), 16)
}

type ridKey struct{}

// RequestID returns the request ID the Handler middleware propagated
// through ctx ("" outside a request). Handlers and loggers use it to
// correlate their output with the access log and the X-Request-ID
// response header.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// --- per-request plumbing ----------------------------------------------

// statusRecorder captures the response status and size for metrics and
// access logs, and carries the endpoint name from the instrumented route
// back out to the outer middleware.
type statusRecorder struct {
	http.ResponseWriter
	code     int // 0 until the first WriteHeader/Write
	bytes    int64
	endpoint string
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards streaming flushes (http.TimeoutHandler and httptest
// both expect the wrapper to stay flushable).
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (r *statusRecorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// codeClasses partitions status codes for the per-endpoint request
// counter: enough cardinality to alert on (error ratios per endpoint)
// without a label per distinct code.
var codeClasses = [...]string{"2xx", "3xx", "4xx", "5xx"}

func classIndex(status int) int {
	switch {
	case status >= 500:
		return 3
	case status >= 400:
		return 2
	case status >= 300:
		return 1
	default:
		return 0
	}
}

// handle registers pattern on the mux with per-endpoint instrumentation:
// a latency histogram observation and a status-class counter per
// request, both resolved once here rather than per request. The
// metriclabel analyzer sees from the call graph that handle is only
// reached by plain static calls (routes' registrations), so the
// With-in-loop below needs no suppression: it runs at registration
// frequency by construction.
func (s *Server) handle(pattern, endpoint string, h http.HandlerFunc) {
	hist := s.tel.latency.With(endpoint)
	var codes [len(codeClasses)]*telemetry.Counter
	for i, class := range codeClasses {
		codes[i] = s.tel.requests.With(endpoint, class)
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start).Seconds())
		status := http.StatusOK
		if rec, ok := w.(*statusRecorder); ok {
			rec.endpoint = endpoint
			status = rec.status()
		}
		codes[classIndex(status)].Inc()
	})
}

// --- endpoints ---------------------------------------------------------

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.tel.reg.WritePrometheus(w)
}

// DebugHandler returns the operator debug surface — /debug/pprof/*,
// /debug/vars, /debug/traces, and /metrics — as a handler separate from
// Handler(). cdtserve serves it on the opt-in -debug-addr listener,
// keeping profilers and allocation dumps off the public port.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// accessLog writes one structured line per request. The logger is the
// operator's (cdtserve wires -log-format/-log-level through here); nil
// disables access logging entirely.
func (s *Server) accessLog(r *http.Request, rec *statusRecorder, id string, elapsed time.Duration) {
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("endpoint", rec.endpoint),
		slog.Int("status", rec.status()),
		slog.Int64("bytes", rec.bytes),
		slog.Duration("elapsed", elapsed),
	)
}
