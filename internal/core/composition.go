package core

import (
	"sort"
	"strings"

	"cdt/internal/pattern"
)

// MatchMode selects the semantics of the ⊆o relation (Definition 5).
type MatchMode int

const (
	// MatchContiguous treats a composition as a contiguous, ordered run
	// of labels (a substring of the observation). This is the default and
	// matches the paper's usage: compositions are "ordered sequences of
	// remarkable points" describing a local shape.
	MatchContiguous MatchMode = iota
	// MatchSubsequence allows gaps: the composition's labels must appear
	// in order but not necessarily adjacently. Provided for ablation.
	MatchSubsequence
)

// String names the mode for reports.
func (m MatchMode) String() string {
	if m == MatchSubsequence {
		return "subsequence"
	}
	return "contiguous"
}

// Composition is an ordered sequence of pattern labels (Definition 5)
// used to split tree nodes and to build rule predicates.
type Composition struct {
	Labels []pattern.Label
}

// Len returns the composition length L_c.
func (c Composition) Len() int { return len(c.Labels) }

// UniqueLabels returns N_L, the number of distinct labels in the
// composition (used by the interpretability measure I(c), Equation 1).
func (c Composition) UniqueLabels() int {
	seen := make(map[pattern.Label]struct{}, len(c.Labels))
	for _, l := range c.Labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// Key returns a compact byte-string identity for the composition, usable
// as a map key. Two compositions are equal iff their keys are equal.
func (c Composition) Key() string {
	var b strings.Builder
	b.Grow(3 * len(c.Labels))
	for _, l := range c.Labels {
		b.WriteByte(byte(l.Var))
		b.WriteByte(byte(l.Alpha))
		b.WriteByte(byte(l.Beta))
	}
	return b.String()
}

// String renders the composition with generic interval codes; use Format
// for δ-aware names.
func (c Composition) String() string { return c.Format(pattern.Config{Delta: 2}) }

// Format renders the composition as "[PP[L,H], PN[-H,-L]]" using the
// configuration's interval names.
func (c Composition) Format(cfg pattern.Config) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, l := range c.Labels {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(cfg.LabelName(l))
	}
	b.WriteByte(']')
	return b.String()
}

// MatchedBy reports whether the composition occurs in the label sequence
// under the given mode (c ⊆o d).
func (c Composition) MatchedBy(labels []pattern.Label, mode MatchMode) bool {
	if len(c.Labels) == 0 {
		return true
	}
	if len(c.Labels) > len(labels) {
		return false
	}
	if mode == MatchSubsequence {
		return matchSubsequence(c.Labels, labels)
	}
	return matchContiguous(c.Labels, labels)
}

// matchContiguous reports whether needle occurs as a contiguous run in
// haystack.
func matchContiguous(needle, haystack []pattern.Label) bool {
	n := len(needle)
outer:
	for start := 0; start+n <= len(haystack); start++ {
		for j := 0; j < n; j++ {
			if haystack[start+j] != needle[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

// matchSubsequence reports whether needle occurs in order (with gaps
// allowed) in haystack.
func matchSubsequence(needle, haystack []pattern.Label) bool {
	j := 0
	for _, l := range haystack {
		if l == needle[j] {
			j++
			if j == len(needle) {
				return true
			}
		}
	}
	return false
}

// enumerateCompositions collects every distinct contiguous subsequence,
// with length in [1, maxLen], of the anomalous observations in obs — the
// candidate pool of list_of_all_possible_compositions (Algorithm 1,
// line 6). The paper derives candidate compositions "from an observation
// with anomaly": shapes that never appear near an anomaly cannot describe
// one. Candidates are returned in a deterministic order (increasing
// length, then lexicographic label order) so tree induction is
// reproducible.
func enumerateCompositions(obs []Observation, maxLen int) []Composition {
	seen := make(map[string]struct{})
	var out []Composition
	for i := range obs {
		if obs[i].Class != Anomaly {
			continue
		}
		labels := obs[i].Labels
		for start := 0; start < len(labels); start++ {
			limit := len(labels) - start
			if maxLen > 0 && maxLen < limit {
				limit = maxLen
			}
			for n := 1; n <= limit; n++ {
				c := Composition{Labels: labels[start : start+n]}
				k := c.Key()
				if _, ok := seen[k]; !ok {
					seen[k] = struct{}{}
					out = append(out, c)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return compareCompositions(out[i], out[j]) < 0 })
	return out
}

// compareCompositions orders candidates by length (shorter compositions
// first, so ties in information gain resolve toward simpler, more
// interpretable splits) and then by the unsigned byte order of their
// Key() encodings — compared label by label, without materializing the
// key strings.
func compareCompositions(a, b Composition) int {
	if len(a.Labels) != len(b.Labels) {
		return len(a.Labels) - len(b.Labels)
	}
	for i := range a.Labels {
		la, lb := a.Labels[i], b.Labels[i]
		if la.Var != lb.Var {
			return int(byte(la.Var)) - int(byte(lb.Var))
		}
		if la.Alpha != lb.Alpha {
			return int(byte(la.Alpha)) - int(byte(lb.Alpha))
		}
		if la.Beta != lb.Beta {
			return int(byte(la.Beta)) - int(byte(lb.Beta))
		}
	}
	return 0
}
