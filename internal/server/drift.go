package server

// Drift detection: the server watches each model's live fire rate over a
// sliding window of scored windows and compares it against the rate the
// model saw at training time (Model.TrainingAnomalyRate, carried inside
// the artifact's tree counts). When the live rate wanders past a
// configured absolute bound, the model is marked stale — surfaced on
// /metrics (cdtserve_model_stale{model}) and /healthz — and, when the
// server has a store and a Retrainer, a single-flight background retrain
// publishes a fresh candidate version, unpromoted: drift gets a human a
// reviewed candidate, never a silent model swap.

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"

	cdt "cdt"
	"cdt/internal/modelstore"
)

// Retrainer produces a fresh serialized model document for a drifted
// model. modelstore.CorpusRetrainer is the standard implementation.
type Retrainer interface {
	Retrain(name string, incumbent *cdt.Model) ([]byte, string, error)
}

// driftBuckets is the ring length: the sliding window advances in
// window/driftBuckets-sized steps, so the tracked span stays within
// [window, window·(1+1/driftBuckets)) windows.
const driftBuckets = 16

// driftBucket accumulates one ring slot's worth of scored windows.
// rules holds per-rule firing counts aligned with the model's
// attribution label table (nil when attribution is off), so a stale
// transition can name the rule driving the drift, not just the model.
type driftBucket struct {
	windows uint64
	fired   uint64
	rules   []uint64
}

// driftTracker follows one model's live fire rate.
type driftTracker struct {
	baseline float64 // training-time anomaly rate
	ring     [driftBuckets]driftBucket
	cur      int
	stale    bool   // sticky until the tracker is reset
	rule     string // top firing rule label at the stale transition
}

func (t *driftTracker) totals() (windows, fired uint64) {
	for _, b := range t.ring {
		windows += b.windows
		fired += b.fired
	}
	return windows, fired
}

// topRule sums the per-rule counts across the ring and returns the flat
// index with the most firings over the tracked window (-1 when no rule
// counts were recorded).
func (t *driftTracker) topRule() int {
	var sums []uint64
	for _, b := range t.ring {
		for i, n := range b.rules {
			if i >= len(sums) {
				sums = append(sums, make([]uint64, i+1-len(sums))...)
			}
			sums[i] += n
		}
	}
	best, bestN := -1, uint64(0)
	for i, n := range sums {
		if n > bestN {
			best, bestN = i, n
		}
	}
	return best
}

// drift owns the per-model trackers and the single-flight retrain state.
type drift struct {
	window    int     // minimum windows tracked before evaluating
	bound     float64 // absolute |live − baseline| trigger; <= 0 disables
	store     *modelstore.Store
	retrainer Retrainer
	tel       *serverMetrics
	logger    *slog.Logger // nil-safe: retrain outcomes log only when set

	mu         sync.Mutex
	trackers   map[string]*driftTracker
	retraining map[string]bool // models with a retrain in flight
}

func newDrift(window int, bound float64, store *modelstore.Store, retrainer Retrainer, tel *serverMetrics, logger *slog.Logger) *drift {
	if window <= 0 {
		window = 512
	}
	return &drift{
		window:     window,
		bound:      bound,
		store:      store,
		retrainer:  retrainer,
		tel:        tel,
		logger:     logger,
		trackers:   make(map[string]*driftTracker),
		retraining: make(map[string]bool),
	}
}

// observe folds one scored sample (windows swept, detections fired) for
// name into its sliding window and evaluates the drift bound. Takes
// d.mu; any retrain it triggers runs on a separate goroutine outside
// the lock. Pyramid artifacts are tracked like plain models (their
// baseline is the base scale's training rate) but never retrained
// automatically — the retrainer only knows how to re-fit plain models,
// so a drifted pyramid gets a stale mark and an audit note instead.
//
// ruleCounts is the sample's per-rule firing breakdown (the attribution
// accumulation array; nil when attribution is off). It feeds a per-rule
// window alongside the aggregate one, so a stale transition names the
// rule driving the drift — the paper's rules are the interpretable unit,
// and "model spikes is stale because x4.r2 tripled its fire rate" is
// actionable where "model spikes is stale" is not. ctx carries the
// request ID into retrain log lines.
func (d *drift) observe(ctx context.Context, name string, model cdt.Artifact, attr *modelAttr, windows, fired int, ruleCounts []uint64) {
	if d.bound <= 0 || windows <= 0 {
		return
	}
	d.mu.Lock()
	t := d.trackers[name]
	if t == nil {
		t = &driftTracker{baseline: model.TrainingAnomalyRate()}
		d.trackers[name] = t
	}
	b := &t.ring[t.cur]
	b.windows += uint64(windows)
	b.fired += uint64(fired)
	for i, n := range ruleCounts {
		if n == 0 {
			continue
		}
		if i >= len(b.rules) {
			b.rules = append(b.rules, make([]uint64, i+1-len(b.rules))...)
		}
		b.rules[i] += n
	}
	if b.windows >= uint64(d.window/driftBuckets+1) {
		t.cur = (t.cur + 1) % driftBuckets
		t.ring[t.cur] = driftBucket{}
	}
	total, totalFired := t.totals()
	trigger := false
	if !t.stale && total >= uint64(d.window) {
		live := float64(totalFired) / float64(total)
		if delta := live - t.baseline; delta > d.bound || delta < -d.bound {
			t.stale = true
			if idx := t.topRule(); idx >= 0 {
				t.rule = attr.ruleLabel(idx)
			}
			trigger = true
		}
	}
	rule := t.rule
	launch := trigger && d.store != nil && d.retrainer != nil && !d.retraining[name]
	if launch {
		d.retraining[name] = true
	}
	d.mu.Unlock()

	rid := RequestID(ctx)
	if trigger {
		d.tel.staleModels.With(name).Set(1)
		if d.logger != nil {
			d.logger.Warn("model drift detected",
				"model", name, "top_rule", rule, "request_id", rid)
		}
	}
	if launch {
		incumbent, ok := model.(*cdt.Model)
		if !ok {
			d.mu.Lock()
			delete(d.retraining, name)
			d.mu.Unlock()
			d.tel.retrains.With("skipped").Inc()
			_ = d.store.Note(modelstore.EventRetrain, name, 0,
				fmt.Sprintf("skipped: incumbent is a %q artifact; automatic retraining supports plain models only", model.Info().Kind))
			return
		}
		go d.retrain(name, incumbent, rid)
	}
}

// retrain asks the Retrainer for a fresh document and publishes it to
// the store as an unpromoted candidate. Runs off the request path; the
// single-flight flag set in observe is cleared on exit (under d.mu).
// rid is the ID of the request whose observation tripped the bound —
// the retrain outlives that request, so its log lines carry the ID as a
// plain value.
func (d *drift) retrain(name string, incumbent *cdt.Model, rid string) {
	defer func() {
		d.mu.Lock()
		delete(d.retraining, name)
		d.mu.Unlock()
	}()
	doc, note, err := d.retrainer.Retrain(name, incumbent)
	if err != nil {
		d.tel.retrains.With("error").Inc()
		_ = d.store.Note(modelstore.EventRetrain, name, 0, fmt.Sprintf("failed: %v", err))
		if d.logger != nil {
			d.logger.Warn("drift retrain failed", "model", name, "request_id", rid, "err", err)
		}
		return
	}
	v, err := d.store.Publish(name, doc, "retrain", note)
	if err != nil {
		d.tel.retrains.With("error").Inc()
		_ = d.store.Note(modelstore.EventRetrain, name, 0, fmt.Sprintf("publish failed: %v", err))
		if d.logger != nil {
			d.logger.Warn("drift retrain publish failed", "model", name, "request_id", rid, "err", err)
		}
		return
	}
	d.tel.retrains.With("ok").Inc()
	_ = d.store.Note(modelstore.EventRetrain, name, v.Version, "candidate published, awaiting promotion")
	if d.logger != nil {
		d.logger.Info("drift retrain published candidate",
			"model", name, "version", v.Version, "request_id", rid)
	}
}

// reset clears name's tracker and stale flag — called when a promote,
// rollback, or reload changes what is serving under the name. Takes d.mu.
func (d *drift) reset(name string) {
	d.mu.Lock()
	delete(d.trackers, name)
	d.mu.Unlock()
	d.tel.staleModels.With(name).Set(0)
}

// resetAll clears every tracker (full registry reload). Takes d.mu.
func (d *drift) resetAll() {
	d.mu.Lock()
	names := make([]string, 0, len(d.trackers))
	for name := range d.trackers {
		names = append(names, name)
	}
	d.trackers = make(map[string]*driftTracker)
	d.mu.Unlock()
	for _, name := range names {
		//cdtlint:ignore metriclabel cold path: resetAll runs once per full registry reload, not per observation
		d.tel.staleModels.With(name).Set(0)
	}
}

// staleModels lists models currently marked stale, sorted for stable
// /healthz output. Takes d.mu.
func (d *drift) staleModels() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for name, t := range d.trackers {
		if t.stale {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// staleRules maps each stale model to the rule label that fired most
// over the drift window at the stale transition ("" when attribution
// was off). Surfaced as "stale_rules" on /healthz. Takes d.mu.
func (d *drift) staleRules() map[string]string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]string)
	for name, t := range d.trackers {
		if t.stale && t.rule != "" {
			out[name] = t.rule
		}
	}
	return out
}
