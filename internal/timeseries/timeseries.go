// Package timeseries provides the univariate time-series container used
// throughout the CDT reproduction, together with the preprocessing
// operations the paper applies before labeling: min-max normalization to
// [0,1], resampling (downsampling by aggregation), and chronological
// train/validation/test splitting.
//
// A series may carry point-level anomaly annotations; preprocessing
// operations propagate those annotations so that downstream evaluation
// remains aligned with the values.
package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// Series is a univariate time-series: values uniformly spaced in time,
// optionally annotated with per-point anomaly flags.
//
// Anomalies is either nil (no annotations) or has the same length as
// Values, with Anomalies[i] reporting whether point i is anomalous.
type Series struct {
	// Name identifies the series (e.g. a sensor id); informational only.
	Name string
	// Values holds the observations in time order.
	Values []float64
	// Anomalies flags anomalous points; nil when the series is unlabeled.
	Anomalies []bool
}

// ErrEmpty is returned by operations that require at least one point.
var ErrEmpty = errors.New("timeseries: empty series")

// New returns an unlabeled series over values. The slice is used directly,
// not copied.
func New(name string, values []float64) *Series {
	return &Series{Name: name, Values: values}
}

// NewLabeled returns a labeled series. It panics if anomalies is non-nil
// and its length differs from values, since that always indicates a
// programming error rather than bad input data.
func NewLabeled(name string, values []float64, anomalies []bool) *Series {
	if anomalies != nil && len(anomalies) != len(values) {
		panic(fmt.Sprintf("timeseries: %d values but %d anomaly flags", len(values), len(anomalies)))
	}
	return &Series{Name: name, Values: values, Anomalies: anomalies}
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Values) }

// Labeled reports whether the series carries anomaly annotations.
func (s *Series) Labeled() bool { return s.Anomalies != nil }

// AnomalyCount returns the number of annotated anomalous points.
func (s *Series) AnomalyCount() int {
	n := 0
	for _, a := range s.Anomalies {
		if a {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	c := &Series{Name: s.Name}
	c.Values = append([]float64(nil), s.Values...)
	if s.Anomalies != nil {
		c.Anomalies = append([]bool(nil), s.Anomalies...)
	}
	return c
}

// MinMax returns the minimum and maximum values of the series.
func (s *Series) MinMax() (min, max float64, err error) {
	if len(s.Values) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = s.Values[0], s.Values[0]
	for _, v := range s.Values[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max, nil
}

// Normalize rescales the series in place to the range [0,1] (min-max
// normalization), achieving the scale and offset invariance required by
// the pattern alphabet (paper §3.1). A constant series maps to all zeros.
// It returns the scaling applied so callers can invert it.
func (s *Series) Normalize() (Scale, error) {
	min, max, err := s.MinMax()
	if err != nil {
		return Scale{}, err
	}
	sc := Scale{Min: min, Max: max}
	den := max - min
	if den == 0 {
		for i := range s.Values {
			s.Values[i] = 0
		}
		return sc, nil
	}
	for i, v := range s.Values {
		s.Values[i] = (v - min) / den
	}
	return sc, nil
}

// Scale records a min-max normalization so it can be inverted.
type Scale struct {
	Min, Max float64
}

// Invert maps a normalized value back to the original range.
func (sc Scale) Invert(v float64) float64 { return sc.Min + v*(sc.Max-sc.Min) }

// Apply maps an original-range value to the normalized range. A degenerate
// scale (Max == Min) maps everything to 0.
func (sc Scale) Apply(v float64) float64 {
	if sc.Max == sc.Min {
		return 0
	}
	return (v - sc.Min) / (sc.Max - sc.Min)
}

// Aggregator combines the points of one resampling bucket into one value.
type Aggregator func(bucket []float64) float64

// Mean averages a bucket. It is the paper's downsampling aggregator
// (e.g. hourly electricity readings resampled to daily consumption).
func Mean(bucket []float64) float64 {
	sum := 0.0
	for _, v := range bucket {
		sum += v
	}
	return sum / float64(len(bucket))
}

// Sum totals a bucket (natural for consumption counters).
func Sum(bucket []float64) float64 {
	sum := 0.0
	for _, v := range bucket {
		sum += v
	}
	return sum
}

// Max takes the bucket maximum.
func Max(bucket []float64) float64 {
	m := bucket[0]
	for _, v := range bucket[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Downsample reduces the sampling frequency by grouping every factor
// consecutive points into one bucket and aggregating each bucket with agg.
// A trailing partial bucket is aggregated as-is. A bucket of the output is
// anomalous if any point inside it was anomalous, so annotated anomalies
// survive resampling (paper §3.1, §4.2: "we downsampled these datasets
// from hours to days").
func Downsample(s *Series, factor int, agg Aggregator) (*Series, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("timeseries: downsample factor %d, want >= 1", factor)
	}
	if len(s.Values) == 0 {
		return nil, ErrEmpty
	}
	if factor == 1 {
		return s.Clone(), nil
	}
	n := (len(s.Values) + factor - 1) / factor
	out := &Series{Name: s.Name, Values: make([]float64, 0, n)}
	if s.Anomalies != nil {
		out.Anomalies = make([]bool, 0, n)
	}
	for i := 0; i < len(s.Values); i += factor {
		end := i + factor
		if end > len(s.Values) {
			end = len(s.Values)
		}
		out.Values = append(out.Values, agg(s.Values[i:end]))
		if s.Anomalies != nil {
			anom := false
			for _, a := range s.Anomalies[i:end] {
				if a {
					anom = true
					break
				}
			}
			out.Anomalies = append(out.Anomalies, anom)
		}
	}
	return out, nil
}

// MovingAverage smooths the series with a centered moving average of the
// given odd window width, used as optional noise removal (paper §3.1:
// "resampling could also be used ... to smooth time series and remove any
// noise"). Anomaly flags are preserved point-for-point.
func MovingAverage(s *Series, width int) (*Series, error) {
	if width <= 0 || width%2 == 0 {
		return nil, fmt.Errorf("timeseries: moving-average width %d, want odd and >= 1", width)
	}
	if len(s.Values) == 0 {
		return nil, ErrEmpty
	}
	half := width / 2
	out := s.Clone()
	for i := range s.Values {
		lo, hi := i-half, i+half+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(s.Values) {
			hi = len(s.Values)
		}
		out.Values[i] = Mean(s.Values[lo:hi])
	}
	return out, nil
}

// Split holds the chronological partition used by the evaluation protocol.
type Split struct {
	Train, Validation, Test *Series
}

// ChronologicalSplit partitions the series into contiguous train,
// validation, and test segments with the given fractions (paper §4.1 uses
// 60/20/20). Fractions must be positive and sum to 1 within 1e-9.
func ChronologicalSplit(s *Series, trainFrac, valFrac, testFrac float64) (Split, error) {
	sum := trainFrac + valFrac + testFrac
	if trainFrac <= 0 || valFrac <= 0 || testFrac <= 0 || math.Abs(sum-1) > 1e-9 {
		return Split{}, fmt.Errorf("timeseries: split fractions %v/%v/%v must be positive and sum to 1", trainFrac, valFrac, testFrac)
	}
	n := len(s.Values)
	if n < 3 {
		return Split{}, fmt.Errorf("timeseries: series of length %d cannot be split three ways", n)
	}
	trainEnd := int(math.Round(float64(n) * trainFrac))
	valEnd := trainEnd + int(math.Round(float64(n)*valFrac))
	if trainEnd < 1 {
		trainEnd = 1
	}
	if valEnd <= trainEnd {
		valEnd = trainEnd + 1
	}
	if valEnd >= n {
		valEnd = n - 1
	}
	return Split{
		Train:      s.Slice(0, trainEnd),
		Validation: s.Slice(trainEnd, valEnd),
		Test:       s.Slice(valEnd, n),
	}, nil
}

// Slice returns the sub-series on [lo, hi). The underlying storage is
// shared with the parent series.
func (s *Series) Slice(lo, hi int) *Series {
	out := &Series{Name: s.Name, Values: s.Values[lo:hi]}
	if s.Anomalies != nil {
		out.Anomalies = s.Anomalies[lo:hi]
	}
	return out
}

// Stats summarizes a series for reporting.
type Stats struct {
	N         int
	Min, Max  float64
	Mean, Std float64
	Anomalies int
}

// Summarize computes descriptive statistics.
func Summarize(s *Series) (Stats, error) {
	if len(s.Values) == 0 {
		return Stats{}, ErrEmpty
	}
	st := Stats{N: len(s.Values), Anomalies: s.AnomalyCount()}
	st.Min, st.Max, _ = s.MinMax()
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	st.Mean = sum / float64(st.N)
	ss := 0.0
	for _, v := range s.Values {
		d := v - st.Mean
		ss += d * d
	}
	st.Std = math.Sqrt(ss / float64(st.N))
	return st, nil
}
