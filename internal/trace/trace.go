// Package trace is the stdlib-only request-tracing layer for the
// serving stack: explicit spans with parent links and attributes, W3C
// traceparent propagation, head sampling, a lock-free bounded in-memory
// span ring (served at GET /debug/traces), and optional JSONL export
// for offline analysis.
//
// The design is shaped by the serving benchmarks' overhead gate: when a
// request is not sampled, every span operation is a nil-receiver no-op
// — StartSpan returns a nil *Span on an unsampled context, and all
// *Span methods tolerate a nil receiver — so the unsampled hot path
// pays one context lookup per instrumentation point and nothing else.
// Sampled spans pay for themselves: ID minting, attribute appends, and
// one atomic ring store at End.
//
// Spans are single-goroutine: the goroutine that starts a span sets its
// attributes and ends it. Distinct spans of one trace may live on
// different goroutines (the batch pool fans series spans out), and the
// ring tolerates fully concurrent writers.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a Tracer.
type Config struct {
	// SampleRate is the head-sampling probability in [0, 1] applied to
	// requests that arrive without a traceparent. Inbound sampled
	// traceparents are always honored regardless of the rate; 0 traces
	// nothing but still honors inbound sampled requests.
	SampleRate float64
	// RingSize bounds the in-memory span ring (default 256).
	RingSize int
	// Export, when non-nil, receives one JSON line per finished span —
	// the offline-analysis feed (cdtserve -trace-export).
	Export io.Writer
}

// defaultRingSize keeps roughly the last few dozen multi-span requests
// without the ring becoming a request log.
const defaultRingSize = 256

// Tracer owns the sampling decision, the span ring, and the exporter.
// All methods are safe for concurrent use; a nil *Tracer is a valid
// "tracing disabled" tracer.
type Tracer struct {
	// step is the fixed-point sample rate in 2^32 units: an atomic
	// accumulator advances by step per root decision and samples when
	// the low 32 bits wrap, giving a deterministic every-1/rate-th
	// admission without math/rand in the hot path.
	step uint64
	acc  atomic.Uint64

	ring []atomic.Pointer[SpanData]
	seq  atomic.Uint64 // ring write cursor (total spans recorded)

	spanSeq atomic.Uint64 // span-ID counter, mixed with spanKey

	mu     sync.Mutex // guards export writes
	export io.Writer
}

// New builds a Tracer. Rates outside [0, 1] are clamped.
func New(cfg Config) *Tracer {
	rate := cfg.SampleRate
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	size := cfg.RingSize
	if size <= 0 {
		size = defaultRingSize
	}
	return &Tracer{
		step:   uint64(rate * (1 << 32)),
		ring:   make([]atomic.Pointer[SpanData], size),
		export: cfg.Export,
	}
}

// sample is the head-sampling decision for one root without an inbound
// traceparent.
func (t *Tracer) sample() bool {
	if t.step >= 1<<32 {
		return true
	}
	if t.step == 0 {
		return false
	}
	next := t.acc.Add(t.step)
	return uint32(next) < uint32(t.step)
}

// spanKey makes span IDs unguessable across processes; the counter
// makes them unique (and cheap) within one.
var spanKey = func() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("trace: span id key: %v", err))
	}
	return binary.BigEndian.Uint64(b[:])
}()

// newSpanID mints a 16-hex-char W3C span ID.
func (t *Tracer) newSpanID() string {
	// Weyl-sequence mixing keeps consecutive IDs visually distinct while
	// staying collision-free within the process (the multiplier is odd,
	// so n ↦ n·c is a bijection on uint64).
	v := spanKey ^ (t.spanSeq.Add(1) * 0x9e3779b97f4a7c15)
	if v == 0 {
		v = 1 // the all-zero span ID is invalid per W3C
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return hex.EncodeToString(b[:])
}

// newTraceID mints a 32-hex-char W3C trace ID. Only sampled roots pay
// for the crypto/rand read.
func newTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade loudly,
		// matching the serving layer's request-ID generator.
		panic(fmt.Sprintf("trace: trace id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Attr is one span attribute.
type Attr struct {
	Key, Value string
}

// Span is one in-flight timed operation. A nil *Span is the unsampled
// case and every method no-ops on it.
type Span struct {
	tracer   *Tracer
	traceID  string
	spanID   string
	parentID string
	name     string
	start    time.Time
	attrs    []Attr
}

// SpanData is the finished-span record kept in the ring, served on
// /debug/traces, and exported as JSONL.
type SpanData struct {
	TraceID    string            `json:"trace_id"`
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_id,omitempty"`
	Name       string            `json:"name"`
	StartUnixN int64             `json:"start_unix_ns"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// TraceID returns the span's trace ID ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SpanID returns the span's ID ("" on a nil span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// Traceparent renders the span as an outbound W3C traceparent header
// ("" on a nil span). Spans exist only when sampled, so the flag is
// always 01.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.traceID, s.spanID, true)
}

// SetAttr attaches a key/value attribute. Attribute values are
// diagnostic strings, not metric labels — unbounded values are fine
// here because the ring is bounded, not the key space.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End finishes the span: computes its duration and publishes it to the
// ring (and the exporter, when configured).
func (s *Span) End() {
	if s == nil {
		return
	}
	sd := &SpanData{
		TraceID:    s.traceID,
		SpanID:     s.spanID,
		ParentID:   s.parentID,
		Name:       s.name,
		StartUnixN: s.start.UnixNano(),
		DurationMS: float64(time.Since(s.start)) / float64(time.Millisecond),
	}
	if len(s.attrs) > 0 {
		sd.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			sd.Attrs[a.Key] = a.Value
		}
	}
	t := s.tracer
	i := t.seq.Add(1) - 1
	t.ring[i%uint64(len(t.ring))].Store(sd)
	if t.export != nil {
		t.exportLine(sd)
	}
}

// exportLine appends one JSONL record. The mutex serializes writers so
// lines never interleave; export is off the benchmark-gated path (only
// sampled spans reach it).
func (t *Tracer) exportLine(sd *SpanData) {
	b, err := json.Marshal(sd)
	if err != nil {
		return // SpanData marshals by construction; nothing to report to
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	_, _ = t.export.Write(append(b, '\n'))
}

// Snapshot returns the retained finished spans, newest first. Concurrent
// writers may overwrite slots mid-walk; the snapshot is a diagnostic
// view, not a consistent cut.
func (t *Tracer) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	total := t.seq.Load()
	n := total
	if size := uint64(len(t.ring)); n > size {
		n = size
	}
	out := make([]SpanData, 0, n)
	for k := uint64(0); k < n; k++ {
		if p := t.ring[(total-1-k)%uint64(len(t.ring))].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// --- context plumbing ---------------------------------------------------

type ctxKey struct{}

// ContextWith returns ctx carrying span as the current span.
func ContextWith(ctx context.Context, span *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, span)
}

// FromContext returns the current span (nil when the request is not
// sampled or carries no trace).
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan begins a child of the context's current span. On an
// unsampled context it returns (ctx, nil) untouched — the no-op fast
// path every instrumentation point takes when tracing is off.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := &Span{
		tracer:   parent.tracer,
		traceID:  parent.traceID,
		spanID:   parent.tracer.newSpanID(),
		parentID: parent.spanID,
		name:     name,
		start:    time.Now(),
	}
	return ContextWith(ctx, s), s
}

// StartRequest makes the root sampling decision for one inbound request
// and, when sampled, starts its root span: an inbound traceparent with
// the sampled flag set is always honored (continuing the upstream
// trace), an unsampled or absent traceparent falls back to head
// sampling with a fresh trace ID. Returns (ctx, nil) when the request
// is not traced. Safe on a nil Tracer.
func (t *Tracer) StartRequest(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var traceID, parentID string
	if upTrace, upSpan, sampled, ok := ParseTraceparent(traceparent); ok {
		if !sampled {
			// The upstream made the decision for the whole trace; a span
			// here would be an orphan the collector never asked for.
			return ctx, nil
		}
		traceID, parentID = upTrace, upSpan
	} else if t.sample() {
		traceID = newTraceID()
	} else {
		return ctx, nil
	}
	s := &Span{
		tracer:   t,
		traceID:  traceID,
		spanID:   t.newSpanID(),
		parentID: parentID,
		name:     name,
		start:    time.Now(),
	}
	return ContextWith(ctx, s), s
}

// --- cross-goroutine links ----------------------------------------------

// SpanContext is the portable identity of a span — what background work
// (the shadow-scoring queue) carries across goroutines instead of a
// context, so a worker can parent its spans under the request that
// enqueued the job after that request has finished.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether the link refers to a sampled span.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" }

// LinkFromContext captures the current span's identity (zero when
// unsampled).
func LinkFromContext(ctx context.Context) SpanContext {
	s := FromContext(ctx)
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.traceID, SpanID: s.spanID}
}

// StartLinked begins a span parented under a captured SpanContext,
// continuing its trace on another goroutine. Returns (ctx, nil) when
// the link is zero or the tracer nil.
func (t *Tracer) StartLinked(ctx context.Context, link SpanContext, name string) (context.Context, *Span) {
	if t == nil || !link.Valid() {
		return ctx, nil
	}
	s := &Span{
		tracer:   t,
		traceID:  link.TraceID,
		spanID:   t.newSpanID(),
		parentID: link.SpanID,
		name:     name,
		start:    time.Now(),
	}
	return ContextWith(ctx, s), s
}

// --- W3C traceparent ----------------------------------------------------

// ParseTraceparent parses a W3C traceparent header
// ("00-<32 hex>-<16 hex>-<2 hex>"), reporting the trace ID, the parent
// span ID, and whether the sampled flag is set. ok is false for
// malformed headers, unknown versions, and the invalid all-zero IDs.
func ParseTraceparent(h string) (traceID, spanID string, sampled, ok bool) {
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false, false
	}
	traceID, spanID = h[3:35], h[36:52]
	if !hexValid(traceID) || !hexValid(spanID) || allZero(traceID) || allZero(spanID) {
		return "", "", false, false
	}
	flags, err := hex.DecodeString(h[53:55])
	if err != nil {
		return "", "", false, false
	}
	return traceID, spanID, flags[0]&1 == 1, true
}

// FormatTraceparent renders a version-00 traceparent header.
func FormatTraceparent(traceID, spanID string, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + traceID + "-" + spanID + "-" + flags
}

func hexValid(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
