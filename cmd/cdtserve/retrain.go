package main

// Drift-triggered retraining wiring: -retrain-data names a directory of
// <name>.csv labeled series (the same value[,is_anomaly] rows `cdt
// train` consumes). The data is read at retrain time, not at startup —
// the whole point of retraining is that an operator keeps dropping
// freshly labeled data into the directory — split chronologically, and
// fed to the store's CorpusRetrainer, which re-runs the Bayesian
// (ω, δ) search anchored on the incumbent's options.

import (
	"fmt"
	"os"
	"path/filepath"

	cdt "cdt"
	"cdt/internal/datasets"
	"cdt/internal/modelstore"
	"cdt/internal/timeseries"
)

// csvRetrainer implements server.Retrainer over a directory of labeled
// CSV files.
type csvRetrainer struct {
	dir   string
	iters int
	seed  int64
}

func (r *csvRetrainer) Retrain(name string, incumbent *cdt.Model) ([]byte, string, error) {
	path := filepath.Join(r.dir, name+".csv")
	f, err := os.Open(path)
	if err != nil {
		return nil, "", fmt.Errorf("retrain data for %s: %w", name, err)
	}
	s, err := datasets.ReadCSV(f, path)
	f.Close()
	if err != nil {
		return nil, "", err
	}
	if !s.Labeled() {
		return nil, "", fmt.Errorf("retrain data %s has no is_anomaly column", path)
	}
	// Normalize before splitting so both splits share one scale.
	if _, err := s.Normalize(); err != nil {
		return nil, "", err
	}
	split, err := timeseries.ChronologicalSplit(s, 0.6, 0.2, 0.2)
	if err != nil {
		return nil, "", err
	}
	train, err := cdt.NewCorpus([]*cdt.Series{split.Train})
	if err != nil {
		return nil, "", err
	}
	val, err := cdt.NewCorpus([]*cdt.Series{split.Validation})
	if err != nil {
		return nil, "", err
	}
	cr := &modelstore.CorpusRetrainer{
		Train:      train,
		Validation: val,
		Objective:  cdt.ObjectiveFH,
		Opts:       cdt.OptimizeOptions{InitPoints: 4, Iterations: r.iters, Seed: r.seed},
	}
	return cr.Retrain(name, incumbent)
}
