package cdt

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// makeMultiFeed builds a 2-dimensional feed where anomalies manifest
// only in the dimension given by anomalyDim.
func makeMultiFeed(name string, n int, spikes []int, anomalyDim int, seed int64) *MultiSeries {
	rng := rand.New(rand.NewSource(seed))
	dims := make([][]float64, 2)
	for d := range dims {
		dims[d] = make([]float64, n)
		for i := range dims[d] {
			dims[d][i] = 50 + 10*math.Sin(float64(i)/5+float64(d)) + rng.Float64()
		}
	}
	anoms := make([]bool, n)
	for _, at := range spikes {
		dims[anomalyDim][at] = 200
		anoms[at] = true
	}
	return &MultiSeries{
		Name:      name,
		Dims:      []*Series{NewSeries("temp", dims[0]), NewSeries("pressure", dims[1])},
		Anomalies: anoms,
	}
}

func TestFitMultiDetectsSingleDimensionAnomaly(t *testing.T) {
	train := makeMultiFeed("train", 400, []int{60, 150, 250, 340}, 1, 1)
	mm, err := FitMulti([]*MultiSeries{train}, Options{Omega: 5, Delta: 2}, CombineAny)
	if err != nil {
		t.Fatal(err)
	}
	if mm.Dimensions() != 2 {
		t.Fatalf("dimensions = %d", mm.Dimensions())
	}
	rep, err := mm.Evaluate([]*MultiSeries{train})
	if err != nil {
		t.Fatal(err)
	}
	if rep.F1 < 0.9 {
		t.Errorf("CombineAny training F1 = %v", rep.F1)
	}
}

func TestCombinePolicies(t *testing.T) {
	// Anomaly visible only in dimension 1: Any fires, All cannot (the
	// clean dimension never fires).
	train := makeMultiFeed("train", 400, []int{60, 150, 250, 340}, 1, 2)
	any, err := FitMulti([]*MultiSeries{train}, Options{Omega: 5, Delta: 2}, CombineAny)
	if err != nil {
		t.Fatal(err)
	}
	all, err := FitMulti([]*MultiSeries{train}, Options{Omega: 5, Delta: 2}, CombineAll)
	if err != nil {
		t.Fatal(err)
	}
	anyRep, err := any.Evaluate([]*MultiSeries{train})
	if err != nil {
		t.Fatal(err)
	}
	allRep, err := all.Evaluate([]*MultiSeries{train})
	if err != nil {
		t.Fatal(err)
	}
	if anyRep.Confusion.TP <= allRep.Confusion.TP {
		t.Errorf("Any TP %d should exceed All TP %d for single-dim anomalies",
			anyRep.Confusion.TP, allRep.Confusion.TP)
	}
	// Majority of 2 dims == All for 2 dims.
	maj, err := FitMulti([]*MultiSeries{train}, Options{Omega: 5, Delta: 2}, CombineMajority)
	if err != nil {
		t.Fatal(err)
	}
	majRep, err := maj.Evaluate([]*MultiSeries{train})
	if err != nil {
		t.Fatal(err)
	}
	if majRep.Confusion.TP != allRep.Confusion.TP {
		t.Errorf("majority-of-2 TP %d != all TP %d", majRep.Confusion.TP, allRep.Confusion.TP)
	}
}

func TestFitMultiValidation(t *testing.T) {
	good := makeMultiFeed("g", 100, []int{50}, 0, 3)
	if _, err := FitMulti(nil, Options{Omega: 5, Delta: 2}, CombineAny); err == nil {
		t.Error("no feeds accepted")
	}
	if _, err := FitMulti([]*MultiSeries{good}, Options{Omega: 0, Delta: 2}, CombineAny); err == nil {
		t.Error("bad options accepted")
	}
	ragged := &MultiSeries{
		Name:      "r",
		Dims:      []*Series{NewSeries("a", make([]float64, 10)), NewSeries("b", make([]float64, 9))},
		Anomalies: make([]bool, 10),
	}
	if _, err := FitMulti([]*MultiSeries{ragged}, Options{Omega: 3, Delta: 2}, CombineAny); err == nil {
		t.Error("ragged dimensions accepted")
	}
	empty := &MultiSeries{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Error("zero-dimension feed accepted")
	}
	misflag := &MultiSeries{
		Name:      "m",
		Dims:      []*Series{NewSeries("a", make([]float64, 10))},
		Anomalies: make([]bool, 5),
	}
	if err := misflag.Validate(); err == nil {
		t.Error("misaligned annotation accepted")
	}
	mixed := makeMultiFeed("one", 100, []int{50}, 0, 4)
	mixed.Dims = mixed.Dims[:1]
	if _, err := FitMulti([]*MultiSeries{good, mixed}, Options{Omega: 5, Delta: 2}, CombineAny); err == nil {
		t.Error("mixed dimensionality accepted")
	}
}

func TestMultiDetectWindowsDimensionMismatch(t *testing.T) {
	train := makeMultiFeed("train", 200, []int{60}, 0, 5)
	mm, err := FitMulti([]*MultiSeries{train}, Options{Omega: 5, Delta: 2}, CombineAny)
	if err != nil {
		t.Fatal(err)
	}
	oneDim := &MultiSeries{Name: "x", Dims: train.Dims[:1]}
	if _, err := mm.DetectWindows(oneDim); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestMultiEvaluateRequiresLabels(t *testing.T) {
	train := makeMultiFeed("train", 200, []int{60}, 0, 6)
	mm, err := FitMulti([]*MultiSeries{train}, Options{Omega: 5, Delta: 2}, CombineAny)
	if err != nil {
		t.Fatal(err)
	}
	unlabeled := &MultiSeries{Name: "u", Dims: train.Dims}
	if _, err := mm.Evaluate([]*MultiSeries{unlabeled}); err == nil {
		t.Error("unlabeled feed accepted")
	}
	if _, err := mm.Evaluate(nil); err == nil {
		t.Error("empty evaluation accepted")
	}
}

func TestMultiRuleTextNamesDimensions(t *testing.T) {
	train := makeMultiFeed("train", 300, []int{60, 150}, 1, 7)
	mm, err := FitMulti([]*MultiSeries{train}, Options{Omega: 5, Delta: 2}, CombineAny)
	if err != nil {
		t.Fatal(err)
	}
	text := mm.RuleText()
	for _, want := range []string{`dimension "temp"`, `dimension "pressure"`} {
		if !strings.Contains(text, want) {
			t.Errorf("RuleText missing %q:\n%s", want, text)
		}
	}
	if mm.NumRules() == 0 {
		t.Error("no rules")
	}
	if mm.DimensionModel(1) == nil {
		t.Error("dimension model inaccessible")
	}
}

func TestCombinePolicyString(t *testing.T) {
	if CombineAny.String() != "any" || CombineMajority.String() != "majority" || CombineAll.String() != "all" {
		t.Error("policy names wrong")
	}
}

func TestMultiGeneralizesAcrossFeeds(t *testing.T) {
	trainA := makeMultiFeed("a", 400, []int{60, 150, 250, 340}, 1, 8)
	trainB := makeMultiFeed("b", 400, []int{80, 210, 300}, 1, 9)
	test := makeMultiFeed("t", 300, []int{70, 190}, 1, 10)
	mm, err := FitMulti([]*MultiSeries{trainA, trainB}, Options{Omega: 5, Delta: 2}, CombineAny)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mm.Evaluate([]*MultiSeries{test})
	if err != nil {
		t.Fatal(err)
	}
	if rep.F1 < 0.7 {
		t.Errorf("held-out multivariate F1 = %v", rep.F1)
	}
}

// oracleDetectWindows reimplements the pre-ensemble MultiModel fusion —
// per-dimension DetectWindows accumulated into vote counts, thresholded
// per policy — as a frozen oracle. TestMultiModelDifferential pins the
// refactored implementation (fusion.go's Ensemble) bit-identical to it.
func oracleDetectWindows(mm *MultiModel, ms *MultiSeries) ([]bool, error) {
	var counts []int
	for d := 0; d < mm.Dimensions(); d++ {
		flags, err := mm.DimensionModel(d).DetectWindows(ms.Dims[d])
		if err != nil {
			return nil, err
		}
		if counts == nil {
			counts = make([]int, len(flags))
		}
		for wi, fired := range flags {
			if fired {
				counts[wi]++
			}
		}
	}
	dims := mm.Dimensions()
	out := make([]bool, len(counts))
	for wi, fired := range counts {
		switch mm.Policy {
		case CombineAll:
			out[wi] = fired == dims
		case CombineMajority:
			out[wi] = fired*2 > dims
		default:
			out[wi] = fired > 0
		}
	}
	return out, nil
}

func TestMultiModelDifferential(t *testing.T) {
	feeds := []*MultiSeries{
		makeMultiFeed("a", 400, []int{60, 150, 250, 340}, 0, 31),
		makeMultiFeed("b", 400, []int{80, 210, 300}, 1, 32),
	}
	eval := []*MultiSeries{
		makeMultiFeed("t1", 300, []int{70, 190}, 0, 33),
		makeMultiFeed("t2", 300, []int{40, 110, 220}, 1, 34),
	}
	for _, policy := range []CombinePolicy{CombineAny, CombineMajority, CombineAll} {
		mm, err := FitMulti(feeds, Options{Omega: 5, Delta: 2}, policy)
		if err != nil {
			t.Fatal(err)
		}
		for _, ms := range eval {
			want, err := oracleDetectWindows(mm, ms)
			if err != nil {
				t.Fatal(err)
			}
			got, err := mm.DetectWindows(ms)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s/%s: %d windows, oracle %d", policy, ms.Name, len(got), len(want))
			}
			for wi := range got {
				if got[wi] != want[wi] {
					t.Fatalf("%s/%s: window %d = %v, oracle %v", policy, ms.Name, wi, got[wi], want[wi])
				}
			}
		}
	}
}
