package cdt

import (
	"context"
	"strings"
	"testing"
)

func TestDetectExplainedMatchesDetectWindows(t *testing.T) {
	model, train := trainedModel(t, Options{Omega: 5, Delta: 2})
	flags, err := model.DetectWindows(train)
	if err != nil {
		t.Fatal(err)
	}
	explained, err := model.DetectExplained(context.Background(), train)
	if err != nil {
		t.Fatal(err)
	}
	fired := map[int]WindowDetection{}
	for _, d := range explained {
		fired[d.Window] = d
	}
	for w, f := range flags {
		d, ok := fired[w]
		if ok != f {
			t.Fatalf("window %d: DetectWindows=%v but DetectExplained reported %v", w, f, ok)
		}
		if !ok {
			continue
		}
		if len(d.Fired) == 0 {
			t.Fatalf("window %d fired with no predicates attached", w)
		}
		if d.Start != w+1 || d.End != w+model.Opts.Omega {
			t.Fatalf("window %d covers [%d,%d], want [%d,%d]", w, d.Start, d.End, w+1, w+model.Opts.Omega)
		}
	}
	if len(explained) == 0 {
		t.Fatal("training series produced no detections; test exercises nothing")
	}
}

func TestFiredPredicatesRenderRuleText(t *testing.T) {
	model, train := trainedModel(t, Options{Omega: 5, Delta: 2})
	explained, err := model.DetectExplained(context.Background(), train)
	if err != nil {
		t.Fatal(err)
	}
	ruleText := model.RuleText()
	for _, d := range explained {
		for _, f := range d.Fired {
			if f.Index < 1 || f.Index > model.NumRules() {
				t.Fatalf("fired index %d out of range [1,%d]", f.Index, model.NumRules())
			}
			// The fired text must be exactly the predicate RuleText shows
			// under the same number.
			if !strings.Contains(ruleText, f.Text) {
				t.Fatalf("fired text %q not present in RuleText:\n%s", f.Text, ruleText)
			}
			if f.Description == "" {
				t.Errorf("rule %d has no plain-language description", f.Index)
			}
		}
	}
}

func TestStreamDetectionsCarryFiredRules(t *testing.T) {
	model, train := trainedModel(t, Options{Omega: 5, Delta: 2})
	lo, hi, err := train.MinMax()
	if err != nil {
		t.Fatal(err)
	}
	stream, err := model.NewStream(Scale{Min: lo, Max: hi})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, v := range train.Values {
		for _, d := range stream.Push(v) {
			n++
			if len(d.Fired) == 0 {
				t.Fatalf("stream detection %d..%d has no fired rules", d.WindowStart, d.WindowEnd)
			}
			if d.Fired[0].Text == "" {
				t.Fatal("fired rule has empty text")
			}
		}
	}
	if n == 0 {
		t.Fatal("stream raised no detections over labeled training data")
	}
}

func TestNewStreamDegenerateScaleErrorExplainsBothFootguns(t *testing.T) {
	model, _ := trainedModel(t, Options{Omega: 5, Delta: 2})
	_, err := model.NewStream(Scale{Min: 3, Max: 3})
	if err == nil {
		t.Fatal("degenerate scale accepted")
	}
	msg := err.Error()
	for _, want := range []string{"normalize to 0", "clamp"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}
