// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis API surface that cdtlint needs. The
// build environment for this repository is fully offline (the root module
// must stay zero-dependency and the module cache is empty), so the real
// x/tools framework is not importable; this package keeps the same shapes
// — Analyzer, Pass, Diagnostic — so the analyzers read like standard
// go/analysis code and could be ported to the real framework by swapping
// the import.
//
// The deliberate differences from x/tools are documented where they
// matter: packages are loaded with `go list -json` plus the standard
// library's source importer (see load.go), there is no Fact or Result
// plumbing between analyzers (cdtlint's analyzers are independent), and
// diagnostics carry no suggested fixes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name, documentation, and a Run
// function applied to every loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -list output. It
	// must be a valid Go identifier.
	Name string
	// Doc is the analyzer's documentation; the first line is the summary.
	Doc string
	// Run applies the analyzer to one package. Diagnostics are delivered
	// through pass.Report / pass.Reportf; the error return is for
	// analyzer failure, not for findings.
	Run func(*Pass) error
}

// Pass is the interface between one analyzer and one package unit. Unlike
// x/tools there is one Pass per (analyzer, unit); units are either a
// package's library files, its merged in-package test files, or its
// external _test package (see load.go).
type Pass struct {
	// Analyzer is the check being applied.
	Analyzer *Analyzer
	// Fset maps token positions to file locations. It is shared by every
	// unit of a load so positions are comparable across packages.
	Fset *token.FileSet
	// Files are the unit's parsed syntax trees.
	Files []*ast.File
	// Pkg is the unit's type-checked package.
	Pkg *types.Package
	// TypesInfo holds type information for the unit's syntax.
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver filters diagnostics to
	// the unit's reportable files (a merged test unit re-checks library
	// files for type information but must not double-report into them),
	// and diverts findings matching a //cdtlint:ignore directive into
	// the run's suppressed list.
	Report func(Diagnostic)
	// Prog is the whole load: every unit of the run plus lazily-built
	// cross-function facts (the call graph). Analyzers that only need
	// the current unit ignore it.
	Prog *Program
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
