package main

import (
	"encoding/json"
	"go/token"
	"path/filepath"
	"testing"

	"cdt/tools/analysis"
)

func fixtureFindings(root string) ([]analysis.Finding, []analysis.SuppressedFinding) {
	findings := []analysis.Finding{{
		Analyzer: "hotalloc",
		Position: token.Position{Filename: filepath.Join(root, "internal", "engine", "engine.go"), Line: 42, Column: 7},
		Message:  "make allocates on a hot path",
	}, {
		Analyzer: "cdtlint",
		Position: token.Position{Filename: filepath.Join(root, "corpus.go"), Line: 3, Column: 1},
		Message:  "malformed //cdtlint:ignore directive",
	}}
	suppressed := []analysis.SuppressedFinding{{
		Finding: analysis.Finding{
			Analyzer: "metriclabel",
			Position: token.Position{Filename: filepath.Join(root, "internal", "server", "drift.go"), Line: 9, Column: 2},
			Message:  "GaugeVec.With inside a loop re-resolves the child per iteration",
		},
		Reason: "cold path: runs once per manifest reload",
	}}
	return findings, suppressed
}

// TestRenderSARIFShape checks the exact envelope GitHub code scanning
// requires: schema/version, a driver with rules, results pointing at
// in-bounds rule indices, %SRCROOT%-relative slash URIs, and inSource
// suppressions carrying the directive's justification.
func TestRenderSARIFShape(t *testing.T) {
	root := string(filepath.Separator) + "repo"
	findings, suppressed := fixtureFindings(root)
	out, err := renderSARIF(findings, suppressed, analyzers, root)
	if err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Suppressions []struct {
					Kind          string `json:"kind"`
					Justification string `json:"justification"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}

	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if log.Schema == "" {
		t.Error("missing $schema")
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "cdtlint" {
		t.Errorf("driver name = %q, want cdtlint", run.Tool.Driver.Name)
	}
	// One rule per registered analyzer plus the reserved directive rule.
	if want := len(analyzers) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rules = %d, want %d", len(run.Tool.Driver.Rules), want)
	}
	ruleAt := map[int]string{}
	for i, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no shortDescription", r.ID)
		}
		ruleAt[i] = r.ID
	}

	if want := len(findings) + len(suppressed); len(run.Results) != want {
		t.Fatalf("results = %d, want %d", len(run.Results), want)
	}
	for _, res := range run.Results {
		if ruleAt[res.RuleIndex] != res.RuleID {
			t.Errorf("result %s: ruleIndex %d resolves to %q", res.RuleID, res.RuleIndex, ruleAt[res.RuleIndex])
		}
		if res.Level != "error" {
			t.Errorf("result %s: level = %q, want error", res.RuleID, res.Level)
		}
		if res.Message.Text == "" {
			t.Errorf("result %s: empty message", res.RuleID)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %s: locations = %d, want 1", res.RuleID, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if filepath.IsAbs(loc.ArtifactLocation.URI) {
			t.Errorf("result %s: URI %q is absolute, want %%SRCROOT%%-relative", res.RuleID, loc.ArtifactLocation.URI)
		}
		if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
			t.Errorf("result %s: uriBaseId = %q", res.RuleID, loc.ArtifactLocation.URIBaseID)
		}
		if loc.Region.StartLine <= 0 {
			t.Errorf("result %s: startLine = %d", res.RuleID, loc.Region.StartLine)
		}
	}

	first := run.Results[0]
	if got := first.Locations[0].PhysicalLocation.ArtifactLocation.URI; got != "internal/engine/engine.go" {
		t.Errorf("URI = %q, want internal/engine/engine.go (slash-separated, relative)", got)
	}
	if len(first.Suppressions) != 0 {
		t.Errorf("active finding carries suppressions: %v", first.Suppressions)
	}
	last := run.Results[len(run.Results)-1]
	if len(last.Suppressions) != 1 || last.Suppressions[0].Kind != "inSource" {
		t.Fatalf("suppressed finding: suppressions = %+v, want one inSource", last.Suppressions)
	}
	if last.Suppressions[0].Justification != "cold path: runs once per manifest reload" {
		t.Errorf("justification = %q", last.Suppressions[0].Justification)
	}
}

// TestRenderJSONShape checks the stable cdtlint JSON document: findings
// and suppressed arrays (never null), counts, and suppression reasons.
func TestRenderJSONShape(t *testing.T) {
	root := string(filepath.Separator) + "repo"
	findings, suppressed := fixtureFindings(root)
	out, err := renderJSON(findings, suppressed, root)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var report jsonReport
	if err := json.Unmarshal(out, &report); err != nil {
		t.Fatal(err)
	}
	if report.Counts.Findings != 2 || report.Counts.Suppressed != 1 {
		t.Errorf("counts = %+v, want {2 1}", report.Counts)
	}
	if len(report.Findings) != 2 || len(report.Suppressed) != 1 {
		t.Fatalf("findings/suppressed = %d/%d", len(report.Findings), len(report.Suppressed))
	}
	if report.Findings[0].File != filepath.Join("internal", "engine", "engine.go") {
		t.Errorf("file = %q, want root-relative path", report.Findings[0].File)
	}
	if report.Findings[0].Reason != "" {
		t.Errorf("active finding has a reason: %q", report.Findings[0].Reason)
	}
	if report.Suppressed[0].Reason == "" {
		t.Error("suppressed finding lost its justification")
	}

	// Empty runs must still render arrays, not nulls: the CI consumer
	// indexes .findings unconditionally.
	out, err = renderJSON(nil, nil, root)
	if err != nil {
		t.Fatal(err)
	}
	var empty map[string]any
	if err := json.Unmarshal(out, &empty); err != nil {
		t.Fatal(err)
	}
	if _, ok := empty["findings"].([]any); !ok {
		t.Errorf("empty findings rendered as %T, want array", empty["findings"])
	}
	if _, ok := empty["suppressed"].([]any); !ok {
		t.Errorf("empty suppressed rendered as %T, want array", empty["suppressed"])
	}
}
