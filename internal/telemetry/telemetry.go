// Package telemetry is the repository's runtime-metrics core: atomic
// counters, gauges, and fixed-bucket latency histograms behind a
// registry with Prometheus text-format exposition. It is stdlib-only
// and built for hot paths:
//
//   - Writes (Counter.Add, Gauge.Set, Histogram.Observe) are lock-free
//     atomic operations. The serving benchmarks gate on instrumentation
//     staying under noise, so the histogram hot path is a binary search
//     over a fixed bucket table plus one atomic increment and one CAS
//     float add — no mutex, no allocation.
//   - Reads (WritePrometheus) take only the registry's registration
//     mutex, which writers never touch: a scrape can never block a
//     request thread. Snapshots are per-value atomic loads, not a
//     consistent cut across metrics — standard for Prometheus clients.
//   - Registration (Registry.Counter, Vec.With, ...) is mutex-guarded
//     and meant for setup time; callers pre-resolve instruments for
//     their hot paths instead of doing a Vec lookup per event.
//
// The package also owns the repo's wall-clock access for trace events
// (Stopwatch): deterministic training packages (cdt, internal/bayesopt)
// are forbidden direct time.Now calls by the cdtlint detfloat analyzer,
// because clocks must never feed back into training results. Durations
// that ride *alongside* results — optimizer trial traces, cache-stats
// reports — go through the Stopwatch so the boundary stays auditable:
// any clock read in a deterministic package is a telemetry import, not
// a hidden dependency.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency histogram bounds in seconds,
// spanning 100µs to 10s — wide enough for both the sub-millisecond
// stream pushes and multi-second cold batch detects cdtserve sees.
// The +Inf bucket is implicit.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing count. The zero value is usable
// but unregistered; obtain registered counters from a Registry.
type Counter struct {
	v      atomic.Uint64
	labels string
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer value that can go up and down (in-flight
// requests, live sessions).
type Gauge struct {
	v      atomic.Int64
	labels string
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Observe is lock-free; the
// bucket bounds are immutable after construction.
type Histogram struct {
	bounds []float64 // upper bounds, sorted ascending; +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	labels string
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// sort.SearchFloat64s finds the first bound >= v only when bounds are
	// treated as inclusive upper edges (Prometheus "le" semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds of a Stopwatch — the common
// latency-instrumentation idiom.
func (h *Histogram) ObserveSince(sw Stopwatch) { h.Observe(sw.Elapsed().Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Stopwatch measures a wall-clock duration. Deterministic packages use
// it instead of time.Now so the detfloat analyzer can keep direct clock
// reads out of training code; see the package comment.
type Stopwatch struct{ start time.Time }

// NewStopwatch starts timing.
func NewStopwatch() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }

// --- registry ----------------------------------------------------------

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) String() string {
	switch k {
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// family is one metric name: help text, type, and every labeled child.
type family struct {
	name string
	help string
	kind metricKind

	counters   []*Counter
	gauges     []*Gauge
	hists      []*Histogram
	buckets    []float64 // histogram families share one bucket table
	counterFns []funcMetric[uint64]
	gaugeFns   []funcMetric[int64]
}

type funcMetric[T any] struct {
	labels string
	fn     func() T
}

// Registry holds metric families and renders them in Prometheus text
// format. Metric writes never touch the registry; only registration and
// exposition take its mutex.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	ordered  []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family, creating it on first registration and
// panicking on a kind mismatch — metric names are compile-time
// constants, so a collision is a programming error, not a runtime
// condition to handle.
func (r *Registry) lookup(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.ordered = append(r.ordered, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as both %s and %s", name, f.kind, kind))
	}
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.counter(name, help, "")
}

func (r *Registry) counter(name, help, labels string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindCounter)
	for _, c := range f.counters {
		if c.labels == labels {
			return c
		}
	}
	c := &Counter{labels: labels}
	f.counters = append(f.counters, c)
	return c
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.gauge(name, help, "")
}

func (r *Registry) gauge(name, help, labels string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGauge)
	for _, g := range f.gauges {
		if g.labels == labels {
			return g
		}
	}
	g := &Gauge{labels: labels}
	f.gauges = append(f.gauges, g)
	return g
}

// Histogram registers (or fetches) an unlabeled histogram with the given
// bucket upper bounds (nil uses DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.histogram(name, help, buckets, "")
}

func (r *Registry) histogram(name, help string, buckets []float64, labels string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindHistogram)
	if f.buckets == nil {
		f.buckets = buckets
	}
	for _, h := range f.hists {
		if h.labels == labels {
			return h
		}
	}
	h := &Histogram{
		bounds: f.buckets,
		counts: make([]atomic.Uint64, len(f.buckets)+1), // +1 for +Inf
		labels: labels,
	}
	f.hists = append(f.hists, h)
	return h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for counts maintained elsewhere (expvar back-compat,
// the root package's corpus cache stats). labelPairs is an optional flat
// list of label name/value pairs distinguishing multiple fns under one
// family.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labelPairs ...string) {
	if len(labelPairs)%2 != 0 {
		panic(fmt.Sprintf("telemetry: %s: odd label pair list", name))
	}
	names := make([]string, 0, len(labelPairs)/2)
	values := make([]string, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		names = append(names, labelPairs[i])
		values = append(values, labelPairs[i+1])
	}
	labels := renderLabels(names, values)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindCounterFunc)
	f.counterFns = append(f.counterFns, funcMetric[uint64]{labels: labels, fn: fn})
}

// GaugeFunc registers a gauge read from fn at scrape time (live session
// counts, loaded models).
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGaugeFunc)
	f.gaugeFns = append(f.gaugeFns, funcMetric[int64]{fn: fn})
}

// --- vectors -----------------------------------------------------------

// CounterVec is a counter family partitioned by label values. With is
// mutex-guarded: resolve children once at setup, not per event.
type CounterVec struct {
	r          *Registry
	name, help string
	labelNames []string
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	r.mu.Lock()
	r.lookup(name, help, kindCounter)
	r.mu.Unlock()
	return &CounterVec{r: r, name: name, help: help, labelNames: labelNames}
}

// With returns the child counter for the given label values (one per
// label name, in order).
func (v *CounterVec) With(values ...string) *Counter {
	return v.r.counter(v.name, v.help, renderLabels(v.labelNames, values))
}

// GaugeVec is a gauge family partitioned by label values. With is
// mutex-guarded: resolve children once at setup, not per event.
type GaugeVec struct {
	r          *Registry
	name, help string
	labelNames []string
}

// GaugeVec registers a labeled gauge family (per-model staleness flags,
// per-shard occupancy).
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	r.mu.Lock()
	r.lookup(name, help, kindGauge)
	r.mu.Unlock()
	return &GaugeVec{r: r, name: name, help: help, labelNames: labelNames}
}

// With returns the child gauge for the given label values (one per
// label name, in order).
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.r.gauge(v.name, v.help, renderLabels(v.labelNames, values))
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct {
	r          *Registry
	name, help string
	buckets    []float64
	labelNames []string
}

// HistogramVec registers a labeled histogram family (nil buckets uses
// DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	r.mu.Lock()
	f := r.lookup(name, help, kindHistogram)
	if f.buckets == nil {
		f.buckets = buckets
	}
	r.mu.Unlock()
	return &HistogramVec{r: r, name: name, help: help, buckets: buckets, labelNames: labelNames}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.r.histogram(v.name, v.help, v.buckets, renderLabels(v.labelNames, values))
}

// renderLabels pre-renders a label set as `name="value",...` (sorted by
// label name) so exposition is a plain string write.
func renderLabels(names, values []string) string {
	if len(names) != len(values) {
		panic(fmt.Sprintf("telemetry: %d label values for %d label names", len(values), len(names)))
	}
	if len(names) == 0 {
		return ""
	}
	pairs := make([]string, len(names))
	for i, n := range names {
		pairs[i] = n + `="` + escapeLabel(values[i]) + `"`
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// escapeLabel applies the Prometheus label-value escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\n\"") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '"':
			b.WriteString(`\"`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// --- exposition --------------------------------------------------------

// WritePrometheus renders every registered family in Prometheus text
// exposition format to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	_, err := io.WriteString(w, r.Render())
	return err
}

// render builds the exposition (sorted by family name, children in
// registration order). Values are atomic loads; writers are never
// blocked — only registration contends on the mutex held here.
func (r *Registry) render(w *strings.Builder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, len(r.ordered))
	copy(fams, r.ordered)
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		switch f.kind {
		case kindCounter:
			for _, c := range f.counters {
				writeLine(w, f.name, "", c.labels, strconv.FormatUint(c.Value(), 10))
			}
		case kindGauge:
			for _, g := range f.gauges {
				writeLine(w, f.name, "", g.labels, strconv.FormatInt(g.Value(), 10))
			}
		case kindCounterFunc:
			for _, m := range f.counterFns {
				writeLine(w, f.name, "", m.labels, strconv.FormatUint(m.fn(), 10))
			}
		case kindGaugeFunc:
			for _, m := range f.gaugeFns {
				writeLine(w, f.name, "", m.labels, strconv.FormatInt(m.fn(), 10))
			}
		case kindHistogram:
			for _, h := range f.hists {
				writeHistogram(w, f.name, h)
			}
		}
	}
}

// Render returns the exposition as a string (the HTTP handler's path).
func (r *Registry) Render() string {
	var b strings.Builder
	r.render(&b)
	return b.String()
}

func writeLine(w *strings.Builder, name, suffix, labels, value string) {
	w.WriteString(name)
	w.WriteString(suffix)
	if labels != "" {
		w.WriteString("{")
		w.WriteString(labels)
		w.WriteString("}")
	}
	w.WriteString(" ")
	w.WriteString(value)
	w.WriteString("\n")
}

// writeHistogram renders cumulative buckets plus _sum and _count. Bucket
// counts are loaded once each, so the cumulative series is internally
// consistent even while observes race the scrape; _count is derived from
// the same loads.
func writeHistogram(w *strings.Builder, name string, h *Histogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeLine(w, name, "_bucket", joinLabels(h.labels, `le="`+formatFloat(bound)+`"`), strconv.FormatUint(cum, 10))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeLine(w, name, "_bucket", joinLabels(h.labels, `le="+Inf"`), strconv.FormatUint(cum, 10))
	writeLine(w, name, "_sum", h.labels, formatFloat(h.Sum()))
	writeLine(w, name, "_count", h.labels, strconv.FormatUint(cum, 10))
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
