package server

// Drift detection: the server watches each model's live fire rate over a
// sliding window of scored windows and compares it against the rate the
// model saw at training time (Model.TrainingAnomalyRate, carried inside
// the artifact's tree counts). When the live rate wanders past a
// configured absolute bound, the model is marked stale — surfaced on
// /metrics (cdtserve_model_stale{model}) and /healthz — and, when the
// server has a store and a Retrainer, a single-flight background retrain
// publishes a fresh candidate version, unpromoted: drift gets a human a
// reviewed candidate, never a silent model swap.

import (
	"fmt"
	"sort"
	"sync"

	cdt "cdt"
	"cdt/internal/modelstore"
)

// Retrainer produces a fresh serialized model document for a drifted
// model. modelstore.CorpusRetrainer is the standard implementation.
type Retrainer interface {
	Retrain(name string, incumbent *cdt.Model) ([]byte, string, error)
}

// driftBuckets is the ring length: the sliding window advances in
// window/driftBuckets-sized steps, so the tracked span stays within
// [window, window·(1+1/driftBuckets)) windows.
const driftBuckets = 16

// driftBucket accumulates one ring slot's worth of scored windows.
type driftBucket struct {
	windows uint64
	fired   uint64
}

// driftTracker follows one model's live fire rate.
type driftTracker struct {
	baseline float64 // training-time anomaly rate
	ring     [driftBuckets]driftBucket
	cur      int
	stale    bool // sticky until the tracker is reset
}

func (t *driftTracker) totals() (windows, fired uint64) {
	for _, b := range t.ring {
		windows += b.windows
		fired += b.fired
	}
	return windows, fired
}

// drift owns the per-model trackers and the single-flight retrain state.
type drift struct {
	window    int     // minimum windows tracked before evaluating
	bound     float64 // absolute |live − baseline| trigger; <= 0 disables
	store     *modelstore.Store
	retrainer Retrainer
	tel       *serverMetrics

	mu         sync.Mutex
	trackers   map[string]*driftTracker
	retraining map[string]bool // models with a retrain in flight
}

func newDrift(window int, bound float64, store *modelstore.Store, retrainer Retrainer, tel *serverMetrics) *drift {
	if window <= 0 {
		window = 512
	}
	return &drift{
		window:     window,
		bound:      bound,
		store:      store,
		retrainer:  retrainer,
		tel:        tel,
		trackers:   make(map[string]*driftTracker),
		retraining: make(map[string]bool),
	}
}

// observe folds one scored sample (windows swept, detections fired) for
// name into its sliding window and evaluates the drift bound. Takes
// d.mu; any retrain it triggers runs on a separate goroutine outside
// the lock. Pyramid artifacts are tracked like plain models (their
// baseline is the base scale's training rate) but never retrained
// automatically — the retrainer only knows how to re-fit plain models,
// so a drifted pyramid gets a stale mark and an audit note instead.
func (d *drift) observe(name string, model cdt.Artifact, windows, fired int) {
	if d.bound <= 0 || windows <= 0 {
		return
	}
	d.mu.Lock()
	t := d.trackers[name]
	if t == nil {
		t = &driftTracker{baseline: model.TrainingAnomalyRate()}
		d.trackers[name] = t
	}
	t.ring[t.cur].windows += uint64(windows)
	t.ring[t.cur].fired += uint64(fired)
	if t.ring[t.cur].windows >= uint64(d.window/driftBuckets+1) {
		t.cur = (t.cur + 1) % driftBuckets
		t.ring[t.cur] = driftBucket{}
	}
	total, totalFired := t.totals()
	trigger := false
	if !t.stale && total >= uint64(d.window) {
		live := float64(totalFired) / float64(total)
		if delta := live - t.baseline; delta > d.bound || delta < -d.bound {
			t.stale = true
			trigger = true
		}
	}
	launch := trigger && d.store != nil && d.retrainer != nil && !d.retraining[name]
	if launch {
		d.retraining[name] = true
	}
	d.mu.Unlock()

	if trigger {
		d.tel.staleModels.With(name).Set(1)
	}
	if launch {
		incumbent, ok := model.(*cdt.Model)
		if !ok {
			d.mu.Lock()
			delete(d.retraining, name)
			d.mu.Unlock()
			d.tel.retrains.With("skipped").Inc()
			_ = d.store.Note(modelstore.EventRetrain, name, 0,
				fmt.Sprintf("skipped: incumbent is a %q artifact; automatic retraining supports plain models only", model.Info().Kind))
			return
		}
		go d.retrain(name, incumbent)
	}
}

// retrain asks the Retrainer for a fresh document and publishes it to
// the store as an unpromoted candidate. Runs off the request path; the
// single-flight flag set in observe is cleared on exit (under d.mu).
func (d *drift) retrain(name string, incumbent *cdt.Model) {
	defer func() {
		d.mu.Lock()
		delete(d.retraining, name)
		d.mu.Unlock()
	}()
	doc, note, err := d.retrainer.Retrain(name, incumbent)
	if err != nil {
		d.tel.retrains.With("error").Inc()
		_ = d.store.Note(modelstore.EventRetrain, name, 0, fmt.Sprintf("failed: %v", err))
		return
	}
	v, err := d.store.Publish(name, doc, "retrain", note)
	if err != nil {
		d.tel.retrains.With("error").Inc()
		_ = d.store.Note(modelstore.EventRetrain, name, 0, fmt.Sprintf("publish failed: %v", err))
		return
	}
	d.tel.retrains.With("ok").Inc()
	_ = d.store.Note(modelstore.EventRetrain, name, v.Version, "candidate published, awaiting promotion")
}

// reset clears name's tracker and stale flag — called when a promote,
// rollback, or reload changes what is serving under the name. Takes d.mu.
func (d *drift) reset(name string) {
	d.mu.Lock()
	delete(d.trackers, name)
	d.mu.Unlock()
	d.tel.staleModels.With(name).Set(0)
}

// resetAll clears every tracker (full registry reload). Takes d.mu.
func (d *drift) resetAll() {
	d.mu.Lock()
	names := make([]string, 0, len(d.trackers))
	for name := range d.trackers {
		names = append(names, name)
	}
	d.trackers = make(map[string]*driftTracker)
	d.mu.Unlock()
	for _, name := range names {
		//cdtlint:ignore metriclabel cold path: resetAll runs once per full registry reload, not per observation
		d.tel.staleModels.With(name).Set(0)
	}
}

// staleModels lists models currently marked stale, sorted for stable
// /healthz output. Takes d.mu.
func (d *drift) staleModels() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for name, t := range d.trackers {
		if t.stale {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
