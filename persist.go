package cdt

// Model persistence: a trained CDT serializes to a stable, versioned
// JSON document (tree structure, options, and pattern configuration), so
// rules learned once can be deployed without retraining.

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"cdt/internal/core"
	"cdt/internal/pattern"
	"cdt/internal/rules"
)

// persistVersion identifies the serialization format.
const persistVersion = 1

// modelDoc is the on-disk form of a Model.
type modelDoc struct {
	Version int        `json:"version"`
	Options optionsDoc `json:"options"`
	Tree    *nodeDoc   `json:"tree"`
}

// optionsDoc mirrors Options with explicit enum encodings.
type optionsDoc struct {
	Omega             int     `json:"omega"`
	Delta             int     `json:"delta"`
	Epsilon           float64 `json:"epsilon"`
	MaxCompositionLen int     `json:"max_composition_len,omitempty"`
	Criterion         string  `json:"criterion"`
	Match             string  `json:"match"`
	LeafPolicy        string  `json:"leaf_policy"`
}

// nodeDoc is one serialized tree node.
type nodeDoc struct {
	// Composition holds label triples [variation, alpha, beta]; nil for
	// leaves.
	Composition [][3]int8 `json:"composition,omitempty"`
	True        *nodeDoc  `json:"true,omitempty"`
	False       *nodeDoc  `json:"false,omitempty"`
	Normal      int       `json:"normal"`
	Anomaly     int       `json:"anomaly"`
}

// doc builds the model's on-disk form — shared by Save and the pyramid
// artifact, which embeds one model doc per scale.
func (m *Model) doc() modelDoc {
	return modelDoc{
		Version: persistVersion,
		Options: optionsDoc{
			Omega:             m.Opts.Omega,
			Delta:             m.Opts.Delta,
			Epsilon:           m.pcfg.Epsilon,
			MaxCompositionLen: m.Opts.MaxCompositionLen,
			Criterion:         m.Opts.Criterion.String(),
			Match:             m.Opts.Match.String(),
			LeafPolicy:        m.Opts.LeafPolicy.String(),
		},
		Tree: encodeNode(m.tree.Root, 0),
	}
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.doc())
}

func encodeNode(n *core.Node, depth int) *nodeDoc {
	if n == nil {
		return nil
	}
	doc := &nodeDoc{Normal: n.Counts.Normal, Anomaly: n.Counts.Anomaly}
	if !n.Leaf() {
		doc.Composition = make([][3]int8, n.Composition.Len())
		for i, l := range n.Composition.Labels {
			doc.Composition[i] = [3]int8{int8(l.Var), int8(l.Alpha), int8(l.Beta)}
		}
		doc.True = encodeNode(n.ChildTrue, depth+1)
		doc.False = encodeNode(n.ChildFalse, depth+1)
	}
	return doc
}

// Load reads a model saved by Save. The restored model predicts and
// detects identically to the original.
func Load(r io.Reader) (*Model, error) {
	var doc modelDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("cdt: decoding model: %w", err)
	}
	return modelFromDoc(doc)
}

// modelFromDoc rebuilds a Model from its decoded on-disk form — shared
// by Load and LoadPyramid. Rejections name the offending field by its
// JSON path relative to the model doc.
func modelFromDoc(doc modelDoc) (*Model, error) {
	if doc.Version != persistVersion {
		return nil, fmt.Errorf("cdt: model version %d, this build reads %d", doc.Version, persistVersion)
	}
	opts := Options{
		Omega:             doc.Options.Omega,
		Delta:             doc.Options.Delta,
		Epsilon:           doc.Options.Epsilon,
		MaxCompositionLen: doc.Options.MaxCompositionLen,
	}
	// Rejections name the offending field by its JSON path (e.g.
	// "options.criterion", "tree.true.composition[1]"), so the model
	// store's audit log and the CLI can say why a candidate was refused,
	// not just that it was.
	switch doc.Options.Criterion {
	case "", "gini":
		opts.Criterion = core.Gini
	case "entropy":
		opts.Criterion = core.Entropy
	default:
		return nil, fmt.Errorf("cdt: options.criterion: unknown criterion %q", doc.Options.Criterion)
	}
	switch doc.Options.Match {
	case "", "contiguous":
		opts.Match = core.MatchContiguous
	case "subsequence":
		opts.Match = core.MatchSubsequence
	default:
		return nil, fmt.Errorf("cdt: options.match: unknown match mode %q", doc.Options.Match)
	}
	switch doc.Options.LeafPolicy {
	case "", "pure-anomaly":
		opts.LeafPolicy = rules.PureAnomalyLeaves
	case "majority-anomaly":
		opts.LeafPolicy = rules.MajorityAnomalyLeaves
	default:
		return nil, fmt.Errorf("cdt: options.leaf_policy: unknown leaf policy %q", doc.Options.LeafPolicy)
	}
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("cdt: options: %s", strings.TrimPrefix(err.Error(), "cdt: "))
	}
	// Bound hyper-parameters to plausible magnitudes: models are loaded
	// from disk at serving time, and an adversarial or corrupted file
	// must fail cleanly instead of driving huge allocations downstream
	// (window buffers are sized by ω, interval tables by δ).
	const maxHyper = 1 << 20
	if opts.Omega > maxHyper {
		return nil, fmt.Errorf("cdt: options.omega: implausible omega %d (max %d)", opts.Omega, maxHyper)
	}
	if opts.Delta > maxHyper {
		return nil, fmt.Errorf("cdt: options.delta: implausible delta %d (max %d)", opts.Delta, maxHyper)
	}
	if doc.Tree == nil {
		return nil, fmt.Errorf("cdt: tree: model has no tree")
	}
	root, err := decodeNode(doc.Tree, "tree", 0, opts.Delta)
	if err != nil {
		return nil, err
	}
	pcfg := opts.patternConfig()
	m := &Model{
		Opts: opts,
		tree: &core.Tree{Root: root, Omega: opts.Omega, Opts: opts.coreOptions()},
		pcfg: pcfg,
	}
	m.raw = rules.FromTree(m.tree, opts.LeafPolicy)
	m.finalizeRules()
	return m, nil
}

// decodeNode rebuilds one tree node. path is the node's JSON path from
// the document root ("tree", "tree.true", ...); every rejection carries
// it so a refused artifact names the exact offending field.
func decodeNode(doc *nodeDoc, path string, depth, delta int) (*core.Node, error) {
	n := &core.Node{
		Counts: core.ClassCounts{Normal: doc.Normal, Anomaly: doc.Anomaly},
		Depth:  depth,
	}
	if doc.Normal < 0 || doc.Anomaly < 0 {
		return nil, fmt.Errorf("cdt: %s: negative class counts normal=%d anomaly=%d", path, doc.Normal, doc.Anomaly)
	}
	if len(doc.Composition) == 0 {
		if doc.True != nil || doc.False != nil {
			return nil, fmt.Errorf("cdt: %s: node has children but no composition", path)
		}
		return n, nil
	}
	if doc.True == nil || doc.False == nil {
		return nil, fmt.Errorf("cdt: %s: split node missing a child", path)
	}
	pcfg := pattern.Config{Delta: delta}
	comp := core.Composition{Labels: make([]pattern.Label, len(doc.Composition))}
	for i, triple := range doc.Composition {
		l := pattern.Label{
			Var:   pattern.Variation(triple[0]),
			Alpha: pattern.Interval(triple[1]),
			Beta:  pattern.Interval(triple[2]),
		}
		if !pcfg.Valid(l) {
			return nil, fmt.Errorf("cdt: %s.composition[%d]: invalid label %v for delta %d", path, i, l, delta)
		}
		comp.Labels[i] = l
	}
	n.Composition = &comp
	var err error
	if n.ChildTrue, err = decodeNode(doc.True, path+".true", depth+1, delta); err != nil {
		return nil, err
	}
	if n.ChildFalse, err = decodeNode(doc.False, path+".false", depth+1, delta); err != nil {
		return nil, err
	}
	return n, nil
}

// pyramidPersistVersion identifies the pyramid serialization format.
const pyramidPersistVersion = 1

// artifactKindPyramid is the document discriminator LoadAny probes for.
// Plain model documents carry no kind field (the format predates
// pyramids and stays byte-stable).
const artifactKindPyramid = "pyramid"

// pyramidDoc is the on-disk form of a PyramidModel: the discriminating
// kind, the fusion policy, and one embedded model doc per scale.
type pyramidDoc struct {
	Version    int       `json:"version"`
	Kind       string    `json:"kind"`
	Aggregator string    `json:"aggregator,omitempty"`
	Fusion     fusionDoc `json:"fusion"`
	// Dim is the scored dimension of a multivariate feed; omitted for
	// the univariate default, so pre-composition documents are
	// byte-stable.
	Dim    int        `json:"dim,omitempty"`
	Scales []scaleDoc `json:"scales"`
}

// scaleDoc is one serialized pyramid scale.
type scaleDoc struct {
	Factor int      `json:"factor"`
	Model  modelDoc `json:"model"`
}

// fusionDoc mirrors Fusion with an explicit policy encoding.
type fusionDoc struct {
	Policy    string    `json:"policy"`
	K         int       `json:"k,omitempty"`
	Weights   []float64 `json:"weights,omitempty"`
	Threshold float64   `json:"threshold,omitempty"`
}

// Save writes the pyramid as JSON.
func (pm *PyramidModel) Save(w io.Writer) error {
	doc := pyramidDoc{
		Version:    pyramidPersistVersion,
		Kind:       artifactKindPyramid,
		Aggregator: canonicalAggregator(pm.Config.Aggregator),
		Fusion: fusionDoc{
			Policy:    pm.Config.Fusion.Policy.String(),
			K:         pm.Config.Fusion.K,
			Weights:   pm.Config.Fusion.Weights,
			Threshold: pm.Config.Fusion.Threshold,
		},
		Dim: pm.Config.Dim,
	}
	for i, mem := range pm.ens.Members {
		doc.Scales = append(doc.Scales, scaleDoc{
			Factor: pm.Config.Factors[i],
			Model:  mem.Model.doc(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadPyramid reads a pyramid saved by PyramidModel.Save. The restored
// pyramid detects and types identically to the original. Like Load,
// rejections name the offending JSON field.
func LoadPyramid(r io.Reader) (*PyramidModel, error) {
	var doc pyramidDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("cdt: decoding pyramid: %w", err)
	}
	return pyramidFromDoc(doc)
}

// pyramidFromDoc rebuilds a PyramidModel from its decoded on-disk form.
func pyramidFromDoc(doc pyramidDoc) (*PyramidModel, error) {
	if doc.Version != pyramidPersistVersion {
		return nil, fmt.Errorf("cdt: pyramid version %d, this build reads %d", doc.Version, pyramidPersistVersion)
	}
	if doc.Kind != artifactKindPyramid {
		return nil, fmt.Errorf("cdt: kind: %q, want %q", doc.Kind, artifactKindPyramid)
	}
	policy, err := ParseFusionPolicy(doc.Fusion.Policy)
	if err != nil {
		return nil, fmt.Errorf("cdt: fusion.policy: %s", strings.TrimPrefix(err.Error(), "cdt: "))
	}
	cfg := PyramidConfig{
		Aggregator: doc.Aggregator,
		Fusion: Fusion{
			Policy:    policy,
			K:         doc.Fusion.K,
			Weights:   doc.Fusion.Weights,
			Threshold: doc.Fusion.Threshold,
		},
		Dim: doc.Dim,
	}
	for _, sd := range doc.Scales {
		cfg.Factors = append(cfg.Factors, sd.Factor)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("cdt: scales: %s", strings.TrimPrefix(err.Error(), "cdt: "))
	}
	pm := &PyramidModel{Config: cfg}
	pm.ens.Fuse = cfg.Fusion
	for i, sd := range doc.Scales {
		m, err := modelFromDoc(sd.Model)
		if err != nil {
			return nil, fmt.Errorf("cdt: scales[%d].model.%s", i, strings.TrimPrefix(err.Error(), "cdt: "))
		}
		if i == 0 {
			pm.Opts = m.Opts
		} else if m.Opts.Omega != pm.Opts.Omega || m.Opts.Delta != pm.Opts.Delta {
			// Detection geometry projects every scale with the shared ω, so
			// a mixed-ω document cannot be scored consistently.
			return nil, fmt.Errorf("cdt: scales[%d].model.options: (omega,delta)=(%d,%d) differs from scale 0's (%d,%d)",
				i, m.Opts.Omega, m.Opts.Delta, pm.Opts.Omega, pm.Opts.Delta)
		}
		pm.ens.Members = append(pm.ens.Members, Member{
			Name:      fmt.Sprintf("x%d", cfg.Factors[i]),
			Model:     m,
			Transform: cfg.memberTransform(cfg.Factors[i]),
		})
	}
	return pm, nil
}
