package cdt

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"cdt/internal/core"
	"cdt/internal/rules"
)

// fitFromScratch reproduces the pre-corpus training pipeline verbatim —
// per-series normalize → label → window, pooled, then tree induction and
// rule extraction — as the golden reference the cached Corpus pipeline
// must match byte for byte.
func fitFromScratch(train []*Series, opts Options) (*Model, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("cdt: no training series")
	}
	pcfg := opts.patternConfig()
	var pooled []core.Observation
	for _, s := range train {
		obs, err := observations(s, pcfg, opts.Omega)
		if err != nil {
			return nil, err
		}
		pooled = append(pooled, obs...)
	}
	tree, err := core.Build(pooled, opts.coreOptions())
	if err != nil {
		return nil, err
	}
	m := &Model{Opts: opts, tree: tree, pcfg: pcfg}
	m.raw = rules.FromTree(tree, opts.LeafPolicy)
	m.finalizeRules()
	return m, nil
}

func saveBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := m.Save(&b); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return b.Bytes()
}

// corpusTestSeries is the shared two-series training set: different
// lengths, different spike layouts, raw (unnormalized) magnitudes.
func corpusTestSeries() []*Series {
	return []*Series{
		spikySeries("a", 400, []int{50, 120, 200, 310}, 1),
		spikySeries("b", 300, []int{40, 150, 260}, 2),
	}
}

// TestCorpusFitGoldenEquivalence fits over a grid of (ω, δ) three ways —
// the from-scratch reference pipeline, the cached corpus (twice, so the
// second fit is served entirely from the cache), and the package-level
// Fit wrapper — and requires byte-identical Save artifacts and identical
// rendered rules.
func TestCorpusFitGoldenEquivalence(t *testing.T) {
	train := corpusTestSeries()
	c, err := NewCorpus(train)
	if err != nil {
		t.Fatal(err)
	}
	for _, omega := range []int{3, 5, 8} {
		for _, delta := range []int{1, 2, 4} {
			opts := Options{Omega: omega, Delta: delta}
			name := fmt.Sprintf("omega=%d/delta=%d", omega, delta)
			want, err := fitFromScratch(train, opts)
			if err != nil {
				t.Fatalf("%s: reference pipeline: %v", name, err)
			}
			wantSave := saveBytes(t, want)
			wantRules := want.RuleText()

			for pass := 0; pass < 2; pass++ { // pass 1 hits the warm cache
				got, err := c.Fit(opts)
				if err != nil {
					t.Fatalf("%s pass %d: corpus fit: %v", name, pass, err)
				}
				if gotSave := saveBytes(t, got); !bytes.Equal(gotSave, wantSave) {
					t.Errorf("%s pass %d: Save artifact differs from reference pipeline", name, pass)
				}
				if gotRules := got.RuleText(); gotRules != wantRules {
					t.Errorf("%s pass %d: RuleText differs:\ngot:\n%s\nwant:\n%s", name, pass, gotRules, wantRules)
				}
			}

			viaFit, err := Fit(train, opts)
			if err != nil {
				t.Fatalf("%s: Fit wrapper: %v", name, err)
			}
			if !bytes.Equal(saveBytes(t, viaFit), wantSave) {
				t.Errorf("%s: Fit wrapper Save artifact differs from reference pipeline", name)
			}
		}
	}
}

// TestCorpusObservationsMatchObservationsOf checks the cached pooled
// windows are exactly the per-series ObservationsOf pools concatenated in
// series order.
func TestCorpusObservationsMatchObservationsOf(t *testing.T) {
	train := corpusTestSeries()
	c, err := NewCorpus(train)
	if err != nil {
		t.Fatal(err)
	}
	for _, omega := range []int{3, 7} {
		for _, delta := range []int{1, 3} {
			opts := Options{Omega: omega, Delta: delta}
			var want []Observation
			for _, s := range train {
				obs, err := ObservationsOf(s, opts)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, obs...)
			}
			got, err := c.Observations(opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("omega=%d delta=%d: pooled observations differ", omega, delta)
			}
		}
	}
}

// TestCorpusEvictionStaysBoundedAndCorrect drives a tiny 2-entry cache
// across more configurations than it can hold: the maps must stay within
// bounds and every (evicted, recomputed) result must still match a fresh
// uncached corpus.
func TestCorpusEvictionStaysBoundedAndCorrect(t *testing.T) {
	train := corpusTestSeries()
	c, err := NewCorpusSize(train, 2)
	if err != nil {
		t.Fatal(err)
	}
	configs := []Options{
		{Omega: 3, Delta: 1},
		{Omega: 4, Delta: 2},
		{Omega: 5, Delta: 3},
		{Omega: 6, Delta: 4},
		{Omega: 3, Delta: 1}, // evicted by now — must recompute correctly
	}
	for _, opts := range configs {
		got, err := c.Observations(opts)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewCorpus(train)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Observations(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("omega=%d delta=%d: observations after eviction differ", opts.Omega, opts.Delta)
		}
		c.mu.RLock()
		nl, nw := len(c.labels), len(c.windows)
		c.mu.RUnlock()
		if nl > 2 || nw > 2 {
			t.Fatalf("cache exceeded bound: %d labelings, %d window pools", nl, nw)
		}
	}
}

// TestCorpusErrorsAreCachedPerConfig checks a failing configuration (ω
// larger than a series' label count) reports the same error through the
// cache, repeatedly, without poisoning other entries.
func TestCorpusErrorsAreCachedPerConfig(t *testing.T) {
	short := spikySeries("short", 10, []int{5}, 3)
	c, err := NewCorpus([]*Series{short})
	if err != nil {
		t.Fatal(err)
	}
	bad := Options{Omega: 9, Delta: 1} // 10 points → 8 labels
	for i := 0; i < 2; i++ {
		if _, err := c.Observations(bad); err == nil {
			t.Fatalf("attempt %d: expected omega-exceeds error", i)
		}
	}
	if _, err := c.Observations(Options{Omega: 3, Delta: 1}); err != nil {
		t.Fatalf("good configuration failed after cached error: %v", err)
	}
}

func TestNewCorpusValidation(t *testing.T) {
	if _, err := NewCorpus(nil); err == nil {
		t.Error("expected error for empty corpus")
	}
	if c, err := NewCorpusSize(corpusTestSeries(), -5); err != nil || c.limit != 1 {
		t.Errorf("cache size not clamped to 1: limit=%v err=%v", c.limit, err)
	}
}

// TestCorpusConcurrentHammer pounds one small-cache corpus from many
// goroutines over an overlapping (ω, δ) grid — concurrent first-misses,
// warm hits, and evictions all interleave — and checks under -race that
// every fit still produces the exact expected rules.
func TestCorpusConcurrentHammer(t *testing.T) {
	train := corpusTestSeries()
	grid := []Options{
		{Omega: 3, Delta: 1},
		{Omega: 3, Delta: 2},
		{Omega: 5, Delta: 1},
		{Omega: 5, Delta: 2},
		{Omega: 7, Delta: 3},
		{Omega: 8, Delta: 4},
	}
	// Golden rules per configuration, computed sequentially up front.
	want := make([]string, len(grid))
	for i, opts := range grid {
		m, err := fitFromScratch(train, opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = m.RuleText()
	}

	// Cache bound 3 < 6 grid cells forces constant eviction under load.
	c, err := NewCorpusSize(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	workers := 8
	iters := 10
	if testing.Short() {
		workers, iters = 4, 3
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				gi := (w + it) % len(grid)
				opts := grid[gi]
				if (w+it)%3 == 0 {
					// Mix plain window reads in with full fits.
					if _, err := c.Observations(opts); err != nil {
						errs <- fmt.Errorf("worker %d: observations %+v: %w", w, opts, err)
						return
					}
					continue
				}
				m, err := c.Fit(opts)
				if err != nil {
					errs <- fmt.Errorf("worker %d: fit %+v: %w", w, opts, err)
					return
				}
				if got := m.RuleText(); got != want[gi] {
					errs <- fmt.Errorf("worker %d: rules for %+v diverged under concurrency", w, opts)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestOptimizeCorpusMatchesOptimize checks the corpus-backed search is
// bit-identical to the wrapper, and that parallel initial-design
// evaluation changes nothing but wall-clock.
func TestOptimizeCorpusMatchesOptimize(t *testing.T) {
	train := []*Series{spikySeries("train", 300, []int{50, 120, 200}, 1)}
	val := []*Series{spikySeries("val", 300, []int{80, 170, 240}, 2)}
	base := OptimizeOptions{
		OmegaMin: 3, OmegaMax: 9,
		DeltaMin: 1, DeltaMax: 4,
		InitPoints: 4, Iterations: 4,
		Seed: 7,
	}

	ref, err := Optimize(train, val, ObjectiveF1, base)
	if err != nil {
		t.Fatal(err)
	}
	// Elapsed is wall-clock observability payload — the only field allowed
	// to differ between bit-identical runs. Drop it before comparing.
	dropElapsed := func(r OptimizeResult) OptimizeResult {
		r.History = append([]OptimizeSample(nil), r.History...)
		for i := range r.History {
			r.History[i].Elapsed = 0
		}
		return r
	}
	ref = dropElapsed(ref)

	trainC, err := NewCorpus(train)
	if err != nil {
		t.Fatal(err)
	}
	valC, err := NewCorpus(val)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{-1, 1, 4} {
		opts := base
		opts.Parallelism = par
		got, err := OptimizeCorpus(trainC, valC, ObjectiveF1, opts)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if got = dropElapsed(got); !reflect.DeepEqual(got, ref) {
			t.Errorf("parallelism %d: result diverged from Optimize wrapper:\ngot  %+v\nwant %+v", par, got, ref)
		}
	}

	if _, err := OptimizeCorpus(nil, valC, ObjectiveF1, base); err == nil {
		t.Error("expected error for nil training corpus")
	}
}

// TestCorpusStats pins the cache-counter semantics: a hit is a lookup
// that found a resident entry, a miss is one that inserted it, and each
// LRU victim bumps the eviction counter — for both the labeling and the
// window cache, per corpus and in the process-wide aggregate.
func TestCorpusStats(t *testing.T) {
	train := corpusTestSeries()
	c, err := NewCorpusSize(train, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats() != (CorpusStats{}) {
		t.Fatalf("fresh corpus stats = %+v, want zero", c.Stats())
	}
	before := CorpusCacheStats()

	steps := []struct {
		opts Options
		want CorpusStats
	}{
		// First (3,1): both caches cold.
		{Options{Omega: 3, Delta: 1}, CorpusStats{LabelMisses: 1, WindowMisses: 1}},
		// Repeat (3,1): warm window pool; the labeling isn't even consulted.
		{Options{Omega: 3, Delta: 1}, CorpusStats{LabelMisses: 1, WindowMisses: 1, WindowHits: 1}},
		// (4,1): new window pool over the δ=1 labeling already cached.
		{Options{Omega: 4, Delta: 1}, CorpusStats{LabelHits: 1, LabelMisses: 1, WindowHits: 1, WindowMisses: 2}},
		// (4,2): new δ; the window cache (limit 2) sheds its LRU entry.
		{Options{Omega: 4, Delta: 2}, CorpusStats{LabelHits: 1, LabelMisses: 2, WindowHits: 1, WindowMisses: 3, WindowEvictions: 1}},
		// (5,3): third δ evicts a labeling too.
		{Options{Omega: 5, Delta: 3}, CorpusStats{LabelHits: 1, LabelMisses: 3, LabelEvictions: 1, WindowHits: 1, WindowMisses: 4, WindowEvictions: 2}},
	}
	for i, step := range steps {
		if _, err := c.Observations(step.opts); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if got := c.Stats(); got != step.want {
			t.Fatalf("step %d (omega=%d delta=%d): stats = %+v, want %+v",
				i, step.opts.Omega, step.opts.Delta, got, step.want)
		}
	}

	// The process-wide aggregate advanced by at least this corpus's share
	// (other corpora in the test binary may add to it, never subtract).
	after := CorpusCacheStats()
	final := steps[len(steps)-1].want
	deltas := []struct {
		name         string
		got, atLeast uint64
	}{
		{"label hits", after.LabelHits - before.LabelHits, final.LabelHits},
		{"label misses", after.LabelMisses - before.LabelMisses, final.LabelMisses},
		{"label evictions", after.LabelEvictions - before.LabelEvictions, final.LabelEvictions},
		{"window hits", after.WindowHits - before.WindowHits, final.WindowHits},
		{"window misses", after.WindowMisses - before.WindowMisses, final.WindowMisses},
		{"window evictions", after.WindowEvictions - before.WindowEvictions, final.WindowEvictions},
	}
	for _, d := range deltas {
		if d.got < d.atLeast {
			t.Errorf("global %s advanced by %d, want >= %d", d.name, d.got, d.atLeast)
		}
	}
}

// TestOptimizeTrace checks the per-trial callback: one event per distinct
// configuration, in evaluation order, mirroring History exactly — at any
// Parallelism, since the parallel init design records sequentially.
func TestOptimizeTrace(t *testing.T) {
	train := []*Series{spikySeries("train", 300, []int{50, 120, 200}, 1)}
	val := []*Series{spikySeries("val", 300, []int{80, 170, 240}, 2)}
	trainC, err := NewCorpus(train)
	if err != nil {
		t.Fatal(err)
	}
	valC, err := NewCorpus(val)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		var trials []OptimizeTrial
		res, err := OptimizeCorpus(trainC, valC, ObjectiveF1, OptimizeOptions{
			OmegaMin: 3, OmegaMax: 9,
			DeltaMin: 1, DeltaMax: 4,
			InitPoints: 4, Iterations: 4,
			Seed:        7,
			Parallelism: par,
			Trace:       func(tr OptimizeTrial) { trials = append(trials, tr) },
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(trials) != res.Evaluations || len(trials) != len(res.History) {
			t.Fatalf("parallelism %d: %d trace events, want evaluations=%d history=%d",
				par, len(trials), res.Evaluations, len(res.History))
		}
		for i, tr := range trials {
			h := res.History[i]
			if tr.Evaluation != i+1 || tr.Omega != h.Omega || tr.Delta != h.Delta ||
				tr.Score != h.Score || tr.Elapsed != h.Elapsed {
				t.Errorf("parallelism %d trial %d: %+v diverges from history %+v", par, i, tr, h)
			}
		}
	}
}
